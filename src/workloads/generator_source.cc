#include "src/workloads/generator_source.hh"

#include <algorithm>
#include <atomic>
#include <cassert>

namespace imli
{

namespace
{

// Process-wide residency instrumentation: records buffered right now in
// every live generator source, and the high-water mark of that sum.
std::atomic<std::uint64_t> liveRecords{0};
std::atomic<std::uint64_t> peakRecords{0};

void
raisePeak(std::uint64_t candidate)
{
    std::uint64_t seen = peakRecords.load(std::memory_order_relaxed);
    while (candidate > seen &&
           !peakRecords.compare_exchange_weak(seen, candidate,
                                              std::memory_order_relaxed))
        ;
}

/** BranchSink filling the source's chunk buffer. */
class BufferSink : public BranchSink
{
  public:
    BufferSink(std::vector<BranchRecord> &buffer, std::uint64_t &emitted)
        : buffer(buffer), emitted(emitted)
    {}

    void
    append(const BranchRecord &rec) override
    {
        buffer.push_back(rec);
        ++emitted;
    }

  private:
    std::vector<BranchRecord> &buffer;
    std::uint64_t &emitted;
};

} // anonymous namespace

GeneratorBranchSource::GeneratorBranchSource(BenchmarkSpec spec,
                                             std::size_t target_branches,
                                             std::size_t chunk_records)
    : spec(std::move(spec)), targetBranches(target_branches),
      chunkRecords(chunk_records == 0 ? 1 : chunk_records)
{
    assert(!this->spec.kernels.empty());
    instantiateKernels();
    exhausted = emitted >= targetBranches; // target 0: empty stream
}

GeneratorBranchSource::~GeneratorBranchSource()
{
    trackBuffered(0);
}

const std::string &
GeneratorBranchSource::name() const
{
    return spec.name;
}

void
GeneratorBranchSource::instantiateKernels()
{
    // Identical seeding to the historical generateTrace(): each kernel
    // gets a private PC region and a fork of the master stream.
    Xoroshiro128 master(spec.seed);
    kernels.clear();
    kernels.reserve(spec.kernels.size());
    for (std::size_t i = 0; i < spec.kernels.size(); ++i) {
        const std::uint64_t pc_base =
            0x400000 + static_cast<std::uint64_t>(i) * 0x100000;
        kernels.push_back(
            instantiateKernel(spec.kernels[i], pc_base, master.fork(i + 1)));
    }
}

void
GeneratorBranchSource::trackBuffered(std::size_t now_buffered)
{
    if (now_buffered > trackedBuffered) {
        const std::uint64_t grown = now_buffered - trackedBuffered;
        raisePeak(liveRecords.fetch_add(grown, std::memory_order_relaxed) +
                  grown);
    } else {
        liveRecords.fetch_sub(trackedBuffered - now_buffered,
                              std::memory_order_relaxed);
    }
    trackedBuffered = now_buffered;
    peakBuffered = std::max(peakBuffered, now_buffered);
}

void
GeneratorBranchSource::refill()
{
    buffer.clear();
    bufferCursor = 0;
    BufferSink sink(buffer, emitted);
    // The weighted round-robin of generateTrace(), paused whenever one
    // chunk's worth of records is buffered: emit every round of the
    // current kernel's weight block, then either finish (the block
    // crossed the target) or move to the next kernel.
    while (!exhausted && buffer.size() < chunkRecords) {
        if (weightDone < spec.kernels[kernelIdx].weight) {
            kernels[kernelIdx]->emitRound(sink);
            ++weightDone;
        }
        if (weightDone >= spec.kernels[kernelIdx].weight) {
            weightDone = 0;
            if (emitted >= targetBranches)
                exhausted = true;
            else
                kernelIdx = (kernelIdx + 1) % kernels.size();
        }
    }
    trackBuffered(buffer.size());
}

BranchSpan
GeneratorBranchSource::nextChunk()
{
    if (bufferCursor >= buffer.size()) {
        if (exhausted)
            return BranchSpan{};
        refill();
        if (buffer.empty())
            return BranchSpan{};
    }
    const std::size_t n =
        std::min(chunkRecords, buffer.size() - bufferCursor);
    BranchSpan span{buffer.data() + bufferCursor, n};
    bufferCursor += n;
    served += n;
    return span;
}

void
GeneratorBranchSource::reset()
{
    trackBuffered(0);
    buffer.clear();
    buffer.shrink_to_fit();
    bufferCursor = 0;
    kernelIdx = 0;
    weightDone = 0;
    emitted = 0;
    served = 0;
    instantiateKernels();
    exhausted = emitted >= targetBranches;
}

std::uint64_t
GeneratorBranchSource::peakLiveRecords()
{
    return peakRecords.load(std::memory_order_relaxed);
}

void
GeneratorBranchSource::resetPeakLiveRecords()
{
    peakRecords.store(liveRecords.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
}

} // namespace imli
