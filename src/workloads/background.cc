#include "src/workloads/background.hh"

#include <cassert>
#include <sstream>

#include "src/util/hashing.hh"

namespace imli
{

// --------------------------------------------------------------------------
// GlobalCorrKernel
// --------------------------------------------------------------------------

GlobalCorrKernel::GlobalCorrKernel(const GlobalCorrParams &params,
                                   std::uint64_t pc_base, Xoroshiro128 rng_)
    : cfg(params), pcBase(pc_base), rng(rng_)
{
    assert(cfg.chains >= 1);
    assert(cfg.statePeriodLog >= 3 && cfg.statePeriodLog <= 16);
    state = static_cast<std::uint32_t>(
                rng.next() & maskBits(cfg.statePeriodLog));
    if (state == 0)
        state = 1;
}

void
GlobalCorrKernel::emitRound(BranchSink &sink)
{
    BranchEmitter emit(sink, rng, cfg.gapMin, cfg.gapMax);
    const unsigned width = cfg.statePeriodLog;
    for (unsigned burst = 0; burst < cfg.burstsPerRound; ++burst) {
        // Advance the hidden state: maximal-length-ish Fibonacci LFSR.
        const std::uint32_t fb =
            ((state >> 0) ^ (state >> 2) ^ (state >> 3) ^ (state >> 4)) &
            1u;
        state = ((state >> 1) | (fb << (width - 1))) &
                static_cast<std::uint32_t>(maskBits(width));
        if (state == 0)
            state = 1;

        auto state_bit = [this](unsigned i) {
            return ((state >> (i % cfg.statePeriodLog)) & 1u) != 0;
        };

        for (unsigned c = 0; c < cfg.chains; ++c) {
            const std::uint64_t base = pcBase + c * 0x100;
            // Correlator pair: deterministic functions of the hidden
            // state phase — learnable through global history, invisible
            // to bimodal.
            const bool a = state_bit(c);
            const bool b = state_bit(c + 2);
            emit.cond(base + 0x10, base + 0x18, a);
            emit.cond(base + 0x20, base + 0x28, b);
            for (unsigned n = 0; n < cfg.pathNoise; ++n) {
                const std::uint64_t pc = base + 0x30 + n * 0x10;
                emit.cond(pc, pc + 0x8, state_bit(c + 1 + n) ^ (n & 1));
            }
            const std::uint64_t dep = base + 0x30 + cfg.pathNoise * 0x10;
            emit.cond(dep, dep + 0x8, a ^ b);
        }
    }
}

std::string
GlobalCorrKernel::describe() const
{
    std::ostringstream os;
    os << "gcorr(chains=" << cfg.chains << ",noise=" << cfg.pathNoise << ")";
    return os.str();
}

// --------------------------------------------------------------------------
// LocalPatternKernel
// --------------------------------------------------------------------------

LocalPatternKernel::LocalPatternKernel(const LocalPatternParams &params,
                                       std::uint64_t pc_base,
                                       Xoroshiro128 rng_)
    : cfg(params), pcBase(pc_base), rng(rng_)
{
    assert(cfg.branches >= 1);
    assert(cfg.periodMin >= 2 && cfg.periodMin <= cfg.periodMax);
    periods.resize(cfg.branches);
    phases.assign(cfg.branches, 0);
    for (unsigned i = 0; i < cfg.branches; ++i)
        periods[i] = static_cast<unsigned>(
            rng.range(cfg.periodMin, cfg.periodMax));
}

std::uint64_t
LocalPatternKernel::patternBranchPc(unsigned i) const
{
    return pcBase + 0x10 + i * 0x40;
}

void
LocalPatternKernel::emitRound(BranchSink &sink)
{
    BranchEmitter emit(sink, rng, cfg.gapMin, cfg.gapMax);
    for (unsigned step = 0; step < cfg.stepsPerRound; ++step) {
        for (unsigned i = 0; i < cfg.branches; ++i) {
            // Polluters between occurrences: strongly biased (cheap to
            // predict on average) but occasionally surprising, which
            // breaks exact global-history contexts so only the per-branch
            // (local) view of the pattern stays clean.
            for (unsigned n = 0; n < cfg.noiseBetween; ++n) {
                const std::uint64_t pc =
                    pcBase + 0x1000 + (i * cfg.noiseBetween + n) * 0x10;
                emit.cond(pc, pc + 0x8,
                          rng.bernoulli(cfg.noiseTakenProb));
            }
            // Pattern: one not-taken per period, otherwise taken.
            const bool taken = (phases[i] % periods[i]) != periods[i] - 1;
            emit.cond(patternBranchPc(i), patternBranchPc(i) + 0x8, taken);
            ++phases[i];
        }
    }
}

std::string
LocalPatternKernel::describe() const
{
    std::ostringstream os;
    os << "lpattern(branches=" << cfg.branches << ",period="
       << cfg.periodMin << ".." << cfg.periodMax
       << ",noise=" << cfg.noiseBetween << ")";
    return os.str();
}

// --------------------------------------------------------------------------
// PathCorrKernel
// --------------------------------------------------------------------------

PathCorrKernel::PathCorrKernel(const PathCorrParams &params,
                               std::uint64_t pc_base, Xoroshiro128 rng_)
    : cfg(params), pcBase(pc_base), rng(rng_), depth(1)
{
    while ((1u << depth) < cfg.paths)
        ++depth;
}

void
PathCorrKernel::emitRound(BranchSink &sink)
{
    BranchEmitter emit(sink, rng, cfg.gapMin, cfg.gapMax);
    for (unsigned burst = 0; burst < cfg.burstsPerRound; ++burst) {
        const bool c = rng.bernoulli(0.5);
        emit.cond(pcBase + 0x10, pcBase + 0x18, c);
        // Walk a random path through a binary tree of branches; each level
        // uses a distinct PC per node so the global history diverges.
        unsigned node = 0;
        for (unsigned level = 0; level < depth; ++level) {
            const bool dir = rng.bernoulli(cfg.pathTakenProb);
            const std::uint64_t pc =
                pcBase + 0x100 + (level * 0x400) + node * 0x10;
            emit.cond(pc, pc + 0x8, dir);
            node = node * 2 + (dir ? 1 : 0);
        }
        // The dependent branch replays the correlator outcome.
        emit.cond(pcBase + 0x20, pcBase + 0x28, c);
    }
}

std::string
PathCorrKernel::describe() const
{
    std::ostringstream os;
    os << "pathcorr(paths=" << (1u << depth) << ")";
    return os.str();
}

// --------------------------------------------------------------------------
// BiasedRandomKernel
// --------------------------------------------------------------------------

BiasedRandomKernel::BiasedRandomKernel(const BiasedRandomParams &params,
                                       std::uint64_t pc_base,
                                       Xoroshiro128 rng_)
    : cfg(params), pcBase(pc_base), rng(rng_)
{
    assert(cfg.branches >= 1);
    probs.resize(cfg.branches);
    for (unsigned i = 0; i < cfg.branches; ++i) {
        probs[i] = cfg.takenProbMin +
                   (cfg.takenProbMax - cfg.takenProbMin) * rng.uniform();
    }
}

void
BiasedRandomKernel::emitRound(BranchSink &sink)
{
    BranchEmitter emit(sink, rng, cfg.gapMin, cfg.gapMax);
    for (unsigned burst = 0; burst < cfg.burstsPerRound; ++burst) {
        for (unsigned i = 0; i < cfg.branches; ++i) {
            const std::uint64_t pc = pcBase + 0x10 + i * 0x10;
            emit.cond(pc, pc + 0x8, rng.bernoulli(probs[i]));
        }
    }
}

std::string
BiasedRandomKernel::describe() const
{
    std::ostringstream os;
    os << "noise(branches=" << cfg.branches << ",p=" << cfg.takenProbMin
       << ".." << cfg.takenProbMax << ")";
    return os.str();
}

// --------------------------------------------------------------------------
// PredictableKernel
// --------------------------------------------------------------------------

PredictableKernel::PredictableKernel(const PredictableParams &params,
                                     std::uint64_t pc_base,
                                     Xoroshiro128 rng_)
    : cfg(params), pcBase(pc_base), rng(rng_)
{
    counters.assign(cfg.branches, 0);
}

void
PredictableKernel::emitRound(BranchSink &sink)
{
    BranchEmitter emit(sink, rng, cfg.gapMin, cfg.gapMax);
    for (unsigned burst = 0; burst < cfg.burstsPerRound; ++burst) {
        for (unsigned i = 0; i < cfg.branches; ++i) {
            const std::uint64_t pc = pcBase + 0x10 + i * 0x10;
            // Short fixed patterns: always-taken, alternating, 3-cycles.
            bool taken;
            switch (i % 3) {
              case 0:
                taken = true;
                break;
              case 1:
                taken = (counters[i] & 1) == 0;
                break;
              default:
                taken = (counters[i] % 3) != 2;
                break;
            }
            emit.cond(pc, pc + 0x8, taken);
            ++counters[i];
        }
        if ((burst & 7) == 0)
            emit.jump(pcBase + 0x800, pcBase + 0x10);
    }
}

std::string
PredictableKernel::describe() const
{
    std::ostringstream os;
    os << "filler(branches=" << cfg.branches << ")";
    return os.str();
}

} // namespace imli
