/**
 * @file
 * Benchmark specification: a name plus the branch-stream backend behind
 * it — either a seeded, weighted mixture of generator kernels, or a
 * recorded trace file (CBP or native .imt format) replayed from disk.
 *
 * Every backend is fully deterministic: generated streams from
 * (spec.seed, target size), recorded streams from the immutable file —
 * so every predictor configuration sees the identical branch sequence
 * and deltas between configurations measure the predictors, not input
 * noise.  makeBranchSource() is the single factory the suite runner (and
 * anything else) uses to open a benchmark's stream, whatever its
 * backend.
 */

#ifndef IMLI_SRC_WORKLOADS_BENCHMARK_SPEC_HH
#define IMLI_SRC_WORKLOADS_BENCHMARK_SPEC_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/trace/branch_source.hh"
#include "src/trace/trace.hh"
#include "src/workloads/background.hh"
#include "src/workloads/two_dim_loop.hh"

namespace imli
{

/** Tagged kernel description (parameters for the active type only). */
struct KernelSpec
{
    enum class Type
    {
        TwoDimLoop,
        RegularLoop,
        GlobalCorr,
        LocalPattern,
        PathCorr,
        BiasedRandom,
        Predictable,
    };

    Type type = Type::Predictable;
    unsigned weight = 1; //!< relative rounds per interleaving cycle

    TwoDimLoopParams twoDim;
    RegularLoopParams regular;
    GlobalCorrParams globalCorr;
    LocalPatternParams localPattern;
    PathCorrParams pathCorr;
    BiasedRandomParams biasedRandom;
    PredictableParams predictable;

    // Convenience factories --------------------------------------------
    static KernelSpec makeTwoDim(const TwoDimLoopParams &p, unsigned w = 1);
    static KernelSpec makeRegular(const RegularLoopParams &p,
                                  unsigned w = 1);
    static KernelSpec makeGlobalCorr(const GlobalCorrParams &p,
                                     unsigned w = 1);
    static KernelSpec makeLocalPattern(const LocalPatternParams &p,
                                       unsigned w = 1);
    static KernelSpec makePathCorr(const PathCorrParams &p, unsigned w = 1);
    static KernelSpec makeBiasedRandom(const BiasedRandomParams &p,
                                       unsigned w = 1);
    static KernelSpec makePredictable(const PredictableParams &p,
                                      unsigned w = 1);
};

/** Where a benchmark's branch stream comes from. */
enum class TraceBackend
{
    Generated,    //!< synthesized by the kernel generator (the default)
    RecordedCbp,  //!< replayed from a CBP-format trace file
    RecordedImt,  //!< replayed from a native .imt trace file
};

/** A named benchmark: generated kernel mix or recorded trace. */
struct BenchmarkSpec
{
    std::string name;   //!< e.g. "SPEC2K6-12"
    std::string suite;  //!< "CBP4", "CBP3" or "REC"
    std::uint64_t seed = 1;
    std::vector<KernelSpec> kernels;  //!< Generated backend only

    TraceBackend backend = TraceBackend::Generated;
    std::string tracePath;  //!< recorded backends: the trace file
};

/**
 * A recorded benchmark over @p path; the backend is picked from the
 * extension (".cbp" / ".imt").  Throws std::invalid_argument on any
 * other extension.
 */
BenchmarkSpec makeRecordedBenchmark(const std::string &name,
                                    const std::string &suite,
                                    const std::string &path);

/**
 * Check @p spec is runnable: a Generated spec needs kernels; a recorded
 * spec needs a readable, well-formed trace file (header probe — the body
 * is not read).  Throws std::runtime_error naming the benchmark and what
 * is wrong.  runSuite() validates every spec up front so a mixed suite
 * fails before any simulation starts, not minutes into the run.
 */
void validateBenchmark(const BenchmarkSpec &spec);

/**
 * Open @p spec's branch stream: a GeneratorBranchSource for Generated
 * specs (capped at @p target_branches like generateTrace), or a
 * streaming file reader for recorded specs.  Recorded streams always
 * play the whole file — the recording's length is part of the scenario —
 * so @p target_branches only applies to generated specs.  All backends
 * hand out O(chunk_records) spans and support reset().
 */
std::unique_ptr<BranchSource>
makeBranchSource(const BenchmarkSpec &spec, std::size_t target_branches,
                 std::size_t chunk_records =
                     BranchSource::defaultChunkRecords);

/** Instantiate one kernel of a spec (private PC region, forked stream). */
KernelPtr instantiateKernel(const KernelSpec &spec, std::uint64_t pc_base,
                            Xoroshiro128 rng);

/**
 * Instantiate the kernels and interleave weighted rounds until the trace
 * holds at least @p target_branches records.  Implemented by draining a
 * GeneratorBranchSource, so the materialized record sequence is identical
 * to the streamed one by construction; prefer streaming (the source plus
 * simulate/simulateMany) for anything large.
 */
Trace generateTrace(const BenchmarkSpec &spec, std::size_t target_branches);

} // namespace imli

#endif // IMLI_SRC_WORKLOADS_BENCHMARK_SPEC_HH
