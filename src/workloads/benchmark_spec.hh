/**
 * @file
 * Benchmark specification: a named, seeded, weighted mixture of kernels,
 * plus the generator that turns it into a Trace.
 *
 * Generation is fully deterministic from (spec.seed, target size): every
 * predictor configuration sees the identical branch stream, so deltas
 * between configurations measure the predictors, not generator noise.
 */

#ifndef IMLI_SRC_WORKLOADS_BENCHMARK_SPEC_HH
#define IMLI_SRC_WORKLOADS_BENCHMARK_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/trace/trace.hh"
#include "src/workloads/background.hh"
#include "src/workloads/two_dim_loop.hh"

namespace imli
{

/** Tagged kernel description (parameters for the active type only). */
struct KernelSpec
{
    enum class Type
    {
        TwoDimLoop,
        RegularLoop,
        GlobalCorr,
        LocalPattern,
        PathCorr,
        BiasedRandom,
        Predictable,
    };

    Type type = Type::Predictable;
    unsigned weight = 1; //!< relative rounds per interleaving cycle

    TwoDimLoopParams twoDim;
    RegularLoopParams regular;
    GlobalCorrParams globalCorr;
    LocalPatternParams localPattern;
    PathCorrParams pathCorr;
    BiasedRandomParams biasedRandom;
    PredictableParams predictable;

    // Convenience factories --------------------------------------------
    static KernelSpec makeTwoDim(const TwoDimLoopParams &p, unsigned w = 1);
    static KernelSpec makeRegular(const RegularLoopParams &p,
                                  unsigned w = 1);
    static KernelSpec makeGlobalCorr(const GlobalCorrParams &p,
                                     unsigned w = 1);
    static KernelSpec makeLocalPattern(const LocalPatternParams &p,
                                       unsigned w = 1);
    static KernelSpec makePathCorr(const PathCorrParams &p, unsigned w = 1);
    static KernelSpec makeBiasedRandom(const BiasedRandomParams &p,
                                       unsigned w = 1);
    static KernelSpec makePredictable(const PredictableParams &p,
                                      unsigned w = 1);
};

/** A named synthetic benchmark. */
struct BenchmarkSpec
{
    std::string name;   //!< e.g. "SPEC2K6-12"
    std::string suite;  //!< "CBP4" or "CBP3"
    std::uint64_t seed = 1;
    std::vector<KernelSpec> kernels;
};

/** Instantiate one kernel of a spec (private PC region, forked stream). */
KernelPtr instantiateKernel(const KernelSpec &spec, std::uint64_t pc_base,
                            Xoroshiro128 rng);

/**
 * Instantiate the kernels and interleave weighted rounds until the trace
 * holds at least @p target_branches records.  Implemented by draining a
 * GeneratorBranchSource, so the materialized record sequence is identical
 * to the streamed one by construction; prefer streaming (the source plus
 * simulate/simulateMany) for anything large.
 */
Trace generateTrace(const BenchmarkSpec &spec, std::size_t target_branches);

} // namespace imli

#endif // IMLI_SRC_WORKLOADS_BENCHMARK_SPEC_HH
