#include "src/spec/fetch_model.hh"

#include <sstream>

#include "src/history/inflight_window.hh"
#include "src/history/local_history.hh"

namespace imli
{

double
SpeculationCostReport::avgEntriesPerSearch() const
{
    if (windowSearches == 0)
        return 0.0;
    return static_cast<double>(windowEntriesVisited) /
           static_cast<double>(windowSearches);
}

std::string
SpeculationCostReport::toString() const
{
    std::ostringstream os;
    os << "  conditional branches:       " << conditionalBranches << '\n'
       << "  checkpoint width:           " << checkpointWidthBits
       << " bits\n"
       << "  in-flight window storage:   " << windowStorageBits
       << " bits\n"
       << "  associative searches:       " << windowSearches << '\n'
       << "  entries visited:            " << windowEntriesVisited << '\n'
       << "  avg compares per search:    " << avgEntriesPerSearch() << '\n'
       << "  in-flight hits:             " << windowHits << '\n';
    return os.str();
}

SpeculationCostReport
measureSpeculationCost(const Trace &trace, const FetchModelConfig &config)
{
    SpeculationCostReport report;
    report.checkpointWidthBits =
        config.ghistPointerBits + config.imliCheckpointBits;

    LocalHistoryTable local(config.localTableEntries,
                            config.localHistoryBits);
    InflightWindow window(config.windowSize, config.localHistoryBits);
    report.windowStorageBits = window.storageBits();

    std::uint64_t visited_before = 0;
    for (const BranchRecord &rec : trace.branches()) {
        if (!isConditional(rec.type))
            continue;
        ++report.conditionalBranches;

        // Checkpoint discipline: constant-width save per prediction.
        report.checkpointTotalBits += report.checkpointWidthBits;

        // In-flight discipline: search the window for the newest
        // speculative history of this local-table entry; fall back to the
        // committed table on a miss.
        const unsigned index = local.index(rec.pc);
        ++report.windowSearches;
        const auto hit = window.lookup(index);
        report.windowEntriesVisited +=
            window.entriesSearched() - visited_before;
        visited_before = window.entriesSearched();

        std::uint64_t hist = hit ? *hit : local.read(rec.pc);
        if (hit)
            ++report.windowHits;

        // Insert the new speculative instance (history including this
        // branch's outcome; trace-driven, so the prediction is perfect
        // and no squashes occur — an upper bound favourable to the
        // in-flight scheme).
        hist = (hist << 1) | (rec.taken ? 1u : 0u);
        window.insert(index, hist);
        local.update(rec.pc, rec.taken);
    }
    return report;
}

} // namespace imli
