/**
 * @file
 * Quantitative comparison of the two speculative-history disciplines the
 * paper contrasts in Section 2.3:
 *
 *  (a) checkpointing — global history head pointer + IMLI counter + PIPE:
 *      a few tens of bits stored per in-flight branch (or per checkpoint),
 *      zero search work at fetch;
 *  (b) in-flight window search — speculative local history: the window of
 *      all in-flight branches must be associatively searched on *every*
 *      prediction, and each slot carries a history register.
 *
 * measureSpeculationCost() drives both models over a trace and reports
 * storage and search-work numbers for the Section 4.4 complexity bench.
 */

#ifndef IMLI_SRC_SPEC_FETCH_MODEL_HH
#define IMLI_SRC_SPEC_FETCH_MODEL_HH

#include <cstdint>
#include <string>

#include "src/trace/trace.hh"

namespace imli
{

/** Model parameters for the speculation-cost measurement. */
struct FetchModelConfig
{
    unsigned windowSize = 64;      //!< in-flight conditional branches
    unsigned localHistoryBits = 24;
    unsigned localTableEntries = 256;
    unsigned ghistPointerBits = 12; //!< global history head pointer width
    unsigned imliCheckpointBits = 26; //!< IMLI counter + PIPE
};

/** Costs of the two disciplines over one trace. */
struct SpeculationCostReport
{
    std::uint64_t conditionalBranches = 0;

    // Checkpoint discipline (global + IMLI).
    std::uint64_t checkpointWidthBits = 0; //!< bits per checkpoint
    std::uint64_t checkpointTotalBits = 0; //!< width x branches

    // In-flight window discipline (local history).
    std::uint64_t windowStorageBits = 0;   //!< resident storage
    std::uint64_t windowSearches = 0;      //!< one per prediction
    std::uint64_t windowEntriesVisited = 0;//!< total compare operations
    std::uint64_t windowHits = 0;          //!< in-flight same-entry hits

    /** Mean associative compares per prediction. */
    double avgEntriesPerSearch() const;

    std::string toString() const;
};

/** Walk @p trace through both disciplines and report the costs. */
SpeculationCostReport
measureSpeculationCost(const Trace &trace,
                       const FetchModelConfig &config = FetchModelConfig());

} // namespace imli

#endif // IMLI_SRC_SPEC_FETCH_MODEL_HH
