/**
 * @file
 * The Section 4.3.2 delayed-update experiment.
 *
 * The paper validates that commit-time (delayed) update of the IMLI
 * outer-history table is accuracy-neutral: with updates deferred until up
 * to 63 further conditional branches have been fetched — a very large
 * instruction window — the predictor loses only ~0.002 MPKI.  This module
 * sweeps the modelled delay for a host predictor over a benchmark suite.
 */

#ifndef IMLI_SRC_SPEC_DELAYED_UPDATE_HH
#define IMLI_SRC_SPEC_DELAYED_UPDATE_HH

#include <string>
#include <vector>

#include "src/workloads/benchmark_spec.hh"

namespace imli
{

/** One point of the delay sweep. */
struct DelayedUpdatePoint
{
    unsigned delay = 0;  //!< branches of outer-history update delay
    double mpkiCbp4 = 0.0;
    double mpkiCbp3 = 0.0;
    double mpkiAll = 0.0;
};

/**
 * Run "host+I" (host in {"tage-gsc", "gehl"}) over @p benchmarks for each
 * delay value and return the average MPKI per point.  This is the
 * paper's original experiment: only the outer-history table write is
 * delayed (ImliOuterHistory's internal queue); everything else updates
 * immediately.
 */
std::vector<DelayedUpdatePoint>
runDelayedUpdateSweep(const std::vector<BenchmarkSpec> &benchmarks,
                      const std::vector<unsigned> &delays,
                      const std::string &host,
                      std::size_t branches_per_trace);

/**
 * One point of the full-pipeline delay sweep: the host with and without
 * the IMLI components, both trained at commit time behind @p delay
 * in-flight branches (the speculative pipeline engine of
 * src/sim/pipeline_simulator.hh).
 */
struct PipelineDelayPoint
{
    unsigned delay = 0;      //!< in-flight branches between fetch and commit
    double mpkiHost = 0.0;   //!< average MPKI, plain host
    double mpkiImli = 0.0;   //!< average MPKI, host+I

    /** The IMLI accuracy benefit surviving at this update delay. */
    double imliBenefit() const { return mpkiHost - mpkiImli; }
};

/**
 * The Section 4.3.2 claim restated on the pipeline engine: sweep the
 * *whole predictor's* update delay and measure whether the IMLI benefit
 * (host vs host+I) survives commit-time update.  Every delay point of
 * both configs rides one streamed pass per benchmark; delay 0 uses the
 * pipeline engine too, so the baseline shares every code path.
 */
std::vector<PipelineDelayPoint>
runPipelineDelaySweep(const std::vector<BenchmarkSpec> &benchmarks,
                      const std::vector<unsigned> &delays,
                      const std::string &host,
                      std::size_t branches_per_trace);

} // namespace imli

#endif // IMLI_SRC_SPEC_DELAYED_UPDATE_HH
