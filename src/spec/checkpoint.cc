#include "src/spec/checkpoint.hh"

namespace imli
{

SpeculativeImliModel::SpeculativeImliModel(const Config &config)
    : cfg(config), imliCount(config.counterBits), outer(config.outer)
{
    outer.setUpdateDelay(cfg.tableUpdateDelay);
}

unsigned
SpeculativeImliModel::checkpointBits() const
{
    return imliCount.numBits() + outer.config().pipeEntries;
}

void
SpeculativeImliModel::specStep(std::uint64_t pc, std::uint64_t target,
                               bool dir)
{
    outer.updatePipe(pc, imliCount.value());
    imliCount.onConditionalBranch(pc, target, dir);
}

void
SpeculativeImliModel::onBranch(std::uint64_t pc, std::uint64_t target,
                               bool predicted, bool actual)
{
    const Checkpoint cp{imliCount.save(), outer.savePipe()};
    ++checkpoints;

    // Fetch: speculate on the predicted direction.
    specStep(pc, target, predicted);

    if (predicted != actual) {
        // Misprediction: flush younger state, restore, resume correctly.
        imliCount.restore(cp.counter);
        outer.restorePipe(cp.pipe);
        ++recovered;
        specStep(pc, target, actual);
    }

    // Commit: the architectural table write with the resolved outcome at
    // the fetch-time IMLI count.
    outer.commitTable(pc, cp.counter, actual);
}

} // namespace imli
