#include "src/spec/delayed_update.hh"

#include <stdexcept>

#include "src/predictors/zoo.hh"
#include "src/sim/simulator.hh"

namespace imli
{

std::vector<DelayedUpdatePoint>
runDelayedUpdateSweep(const std::vector<BenchmarkSpec> &benchmarks,
                      const std::vector<unsigned> &delays,
                      const std::string &host,
                      std::size_t branches_per_trace)
{
    if (host != "tage-gsc" && host != "gehl")
        throw std::invalid_argument("unknown host: " + host);

    struct Accum
    {
        double cbp4 = 0.0;
        double cbp3 = 0.0;
        double all = 0.0;
        unsigned cbp4Count = 0;
        unsigned cbp3Count = 0;
    };
    std::vector<Accum> accums(delays.size());

    for (const BenchmarkSpec &spec : benchmarks) {
        const Trace trace = generateTrace(spec, branches_per_trace);
        for (std::size_t d = 0; d < delays.size(); ++d) {
            ZooOptions opts;
            opts.imliSic = true;
            opts.imliOh = true;
            opts.ohUpdateDelay = delays[d];
            PredictorPtr predictor =
                host == "tage-gsc" ? makeTageGsc(opts) : makeGehl(opts);
            const SimResult r = simulate(*predictor, trace);
            const double mpki = r.mpki();
            accums[d].all += mpki;
            if (spec.suite == "CBP4") {
                accums[d].cbp4 += mpki;
                ++accums[d].cbp4Count;
            } else {
                accums[d].cbp3 += mpki;
                ++accums[d].cbp3Count;
            }
        }
    }

    std::vector<DelayedUpdatePoint> points;
    points.reserve(delays.size());
    for (std::size_t d = 0; d < delays.size(); ++d) {
        DelayedUpdatePoint p;
        p.delay = delays[d];
        const unsigned total =
            accums[d].cbp4Count + accums[d].cbp3Count;
        p.mpkiCbp4 = accums[d].cbp4Count
                         ? accums[d].cbp4 / accums[d].cbp4Count
                         : 0.0;
        p.mpkiCbp3 = accums[d].cbp3Count
                         ? accums[d].cbp3 / accums[d].cbp3Count
                         : 0.0;
        p.mpkiAll = total ? accums[d].all / total : 0.0;
        points.push_back(p);
    }
    return points;
}

} // namespace imli
