#include "src/spec/delayed_update.hh"

#include <stdexcept>

#include "src/predictors/zoo.hh"
#include "src/sim/simulator.hh"
#include "src/workloads/generator_source.hh"

namespace imli
{

std::vector<DelayedUpdatePoint>
runDelayedUpdateSweep(const std::vector<BenchmarkSpec> &benchmarks,
                      const std::vector<unsigned> &delays,
                      const std::string &host,
                      std::size_t branches_per_trace)
{
    if (host != "tage-gsc" && host != "gehl")
        throw std::invalid_argument("unknown host: " + host);

    struct Accum
    {
        double cbp4 = 0.0;
        double cbp3 = 0.0;
        double all = 0.0;
        unsigned cbp4Count = 0;
        unsigned cbp3Count = 0;
    };
    std::vector<Accum> accums(delays.size());

    for (const BenchmarkSpec &spec : benchmarks) {
        // One delay config per predictor, all driven over a single
        // streamed pass of the benchmark — the stream is generated once,
        // never materialized.
        std::vector<PredictorPtr> predictors;
        predictors.reserve(delays.size());
        for (unsigned delay : delays) {
            ZooOptions opts;
            opts.imliSic = true;
            opts.imliOh = true;
            opts.ohUpdateDelay = delay;
            predictors.push_back(host == "tage-gsc" ? makeTageGsc(opts)
                                                    : makeGehl(opts));
        }
        GeneratorBranchSource source(spec, branches_per_trace);
        const std::vector<SimResult> results =
            simulateMany(predictors, source);
        for (std::size_t d = 0; d < delays.size(); ++d) {
            const double mpki = results[d].mpki();
            accums[d].all += mpki;
            if (spec.suite == "CBP4") {
                accums[d].cbp4 += mpki;
                ++accums[d].cbp4Count;
            } else {
                accums[d].cbp3 += mpki;
                ++accums[d].cbp3Count;
            }
        }
    }

    std::vector<DelayedUpdatePoint> points;
    points.reserve(delays.size());
    for (std::size_t d = 0; d < delays.size(); ++d) {
        DelayedUpdatePoint p;
        p.delay = delays[d];
        const unsigned total =
            accums[d].cbp4Count + accums[d].cbp3Count;
        p.mpkiCbp4 = accums[d].cbp4Count
                         ? accums[d].cbp4 / accums[d].cbp4Count
                         : 0.0;
        p.mpkiCbp3 = accums[d].cbp3Count
                         ? accums[d].cbp3 / accums[d].cbp3Count
                         : 0.0;
        p.mpkiAll = total ? accums[d].all / total : 0.0;
        points.push_back(p);
    }
    return points;
}

std::vector<PipelineDelayPoint>
runPipelineDelaySweep(const std::vector<BenchmarkSpec> &benchmarks,
                      const std::vector<unsigned> &delays,
                      const std::string &host,
                      std::size_t branches_per_trace)
{
    if (host != "tage-gsc" && host != "gehl")
        throw std::invalid_argument("unknown host: " + host);

    std::vector<double> hostSum(delays.size(), 0.0);
    std::vector<double> imliSum(delays.size(), 0.0);

    for (const BenchmarkSpec &spec : benchmarks) {
        // Predictor order: [host@d0, host+I@d0, host@d1, host+I@d1, ...],
        // every pair pinned to its delay via per-predictor SimOptions —
        // one streamed pass grades the full grid.
        std::vector<PredictorPtr> predictors;
        std::vector<SimOptions> simOptions;
        for (unsigned delay : delays) {
            ZooOptions plain;
            ZooOptions withImli;
            withImli.imliSic = true;
            withImli.imliOh = true;
            for (const ZooOptions &opts : {plain, withImli}) {
                predictors.push_back(host == "tage-gsc" ? makeTageGsc(opts)
                                                        : makeGehl(opts));
                SimOptions sim;
                sim.updateDelay = delay;
                sim.pipeline = true;
                simOptions.push_back(sim);
            }
        }
        GeneratorBranchSource source(spec, branches_per_trace);
        const std::vector<SimResult> results =
            simulateMany(predictors, source, simOptions);
        for (std::size_t d = 0; d < delays.size(); ++d) {
            hostSum[d] += results[2 * d].mpki();
            imliSum[d] += results[2 * d + 1].mpki();
        }
    }

    std::vector<PipelineDelayPoint> points;
    points.reserve(delays.size());
    const double n =
        benchmarks.empty() ? 1.0 : static_cast<double>(benchmarks.size());
    for (std::size_t d = 0; d < delays.size(); ++d) {
        PipelineDelayPoint p;
        p.delay = delays[d];
        p.mpkiHost = hostSum[d] / n;
        p.mpkiImli = imliSum[d] / n;
        points.push_back(p);
    }
    return points;
}

} // namespace imli
