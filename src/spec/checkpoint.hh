/**
 * @file
 * Speculative management of the IMLI state (paper, Sections 4.2.1, 4.3.2).
 *
 * At fetch time the IMLI counter advances with the *predicted* direction
 * of each backward conditional branch and the PIPE vector absorbs the
 * outer-history bit; on a misprediction, fetch resumes from a checkpoint
 * of just {IMLI counter, PIPE} — 10 + 16 = 26 bits.  The outer-history
 * table itself is written at commit time with the resolved outcome, which
 * Section 4.3.2 shows is accuracy-neutral.  This tiny, block-structured
 * speculative state is the paper's core hardware argument against
 * local-history and wormhole components, whose speculative state is
 * per-branch and needs an associative in-flight search every fetch.
 *
 * SpeculativeImliModel walks a branch stream with imperfect predictions,
 * checkpointing and recovering exactly as hardware would, so tests can
 * assert the recovered state is bit-identical to non-speculative
 * execution.
 */

#ifndef IMLI_SRC_SPEC_CHECKPOINT_HH
#define IMLI_SRC_SPEC_CHECKPOINT_HH

#include <cstdint>

#include "src/core/imli_counter.hh"
#include "src/core/imli_outer_history.hh"

namespace imli
{

/** Fetch-time speculation and recovery for the IMLI state. */
class SpeculativeImliModel
{
  public:
    struct Config
    {
        unsigned counterBits = 10;
        ImliOuterHistory::Config outer;
        /** Commit delay of the outer-history table, in branches. */
        unsigned tableUpdateDelay = 0;
    };

    SpeculativeImliModel() : SpeculativeImliModel(Config()) {}

    explicit SpeculativeImliModel(const Config &config);

    /**
     * Process one conditional branch occurrence: checkpoint, speculate on
     * @p predicted at fetch, recover and re-execute when it differs from
     * @p actual, and commit the outer-history table write.
     */
    void onBranch(std::uint64_t pc, std::uint64_t target, bool predicted,
                  bool actual);

    const ImliCounter &counter() const { return imliCount; }
    const ImliOuterHistory &outerHistory() const { return outer; }

    /** Width of one checkpoint in bits (the paper's 10 + 16 = 26). */
    unsigned checkpointBits() const;

    std::uint64_t checkpointsTaken() const { return checkpoints; }
    std::uint64_t recoveries() const { return recovered; }

  private:
    struct Checkpoint
    {
        ImliCounter::Checkpoint counter;
        ImliOuterHistory::Checkpoint pipe;
    };

    /** Fetch-side speculative step (counter heuristic + PIPE transfer). */
    void specStep(std::uint64_t pc, std::uint64_t target, bool dir);

    Config cfg;
    ImliCounter imliCount;
    ImliOuterHistory outer;
    std::uint64_t checkpoints = 0;
    std::uint64_t recovered = 0;
};

} // namespace imli

#endif // IMLI_SRC_SPEC_CHECKPOINT_HH
