#include "src/history/local_history.hh"

#include <cassert>

#include "src/util/hashing.hh"

namespace imli
{

LocalHistoryTable::LocalHistoryTable(unsigned num_entries,
                                     unsigned history_bits)
    : table(num_entries, 0), bits(history_bits), mask(num_entries - 1)
{
    assert(isPowerOfTwo(num_entries));
    assert(history_bits >= 1 && history_bits <= 64);
}

unsigned
LocalHistoryTable::index(std::uint64_t pc) const
{
    return static_cast<unsigned>(pcHash(pc)) & mask;
}

std::uint64_t
LocalHistoryTable::read(std::uint64_t pc) const
{
    return table[index(pc)];
}

void
LocalHistoryTable::update(std::uint64_t pc, bool taken)
{
    std::uint64_t &h = table[index(pc)];
    h = ((h << 1) | (taken ? 1 : 0)) & maskBits(bits);
}

void
LocalHistoryTable::account(StorageAccount &acct,
                           const std::string &name) const
{
    acct.add(name, static_cast<std::uint64_t>(table.size()) * bits);
}

} // namespace imli
