#include "src/history/inflight_window.hh"

#include <cassert>

namespace imli
{

InflightWindow::InflightWindow(unsigned capacity, unsigned history_bits)
    : cap(capacity), histBits(history_bits)
{
    assert(capacity >= 1);
}

std::uint64_t
InflightWindow::insert(unsigned local_index, std::uint64_t spec_history)
{
    // A full window stalls fetch in hardware; in the model we retire the
    // oldest entry, which matches a commit catching up.
    if (window.size() == cap)
        window.pop_front();
    const std::uint64_t ticket = nextTicket++;
    window.push_back({ticket, local_index, spec_history});
    return ticket;
}

std::optional<std::uint64_t>
InflightWindow::lookup(unsigned local_index)
{
    return lookupBefore(local_index, UINT64_MAX);
}

std::optional<std::uint64_t>
InflightWindow::lookupBefore(unsigned local_index, std::uint64_t max_ticket)
{
    for (auto it = window.rbegin(); it != window.rend(); ++it) {
        ++searched;
        if (it->ticket <= max_ticket && it->localIndex == local_index)
            return it->history;
    }
    return std::nullopt;
}

void
InflightWindow::commitOldest()
{
    if (!window.empty())
        window.pop_front();
}

void
InflightWindow::squashAfter(std::uint64_t ticket)
{
    while (!window.empty() && window.back().ticket > ticket)
        window.pop_back();
}

void
InflightWindow::squashAll()
{
    window.clear();
}

std::uint64_t
InflightWindow::storageBits() const
{
    // Each slot: local index tag + carried history register.
    return static_cast<std::uint64_t>(cap) * (histBits + 16);
}

} // namespace imli
