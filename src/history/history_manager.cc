#include "src/history/history_manager.hh"

#include <cassert>

namespace imli
{

FoldedHistory *
HistoryManager::createFold(unsigned orig_length, unsigned folded_width)
{
    assert(orig_length >= 1);
    folds.push_back(
        std::make_unique<FoldedHistory>(orig_length, folded_width));
    return folds.back().get();
}

void
HistoryManager::push(bool taken, std::uint64_t pc)
{
    // Folds consume the outgoing bit (the one ageing out of each window)
    // before the buffer advances.
    for (auto &fold : folds)
        fold->update(taken, hist.bit(fold->origLength() - 1));
    hist.push(taken, pc);
}

void
HistoryManager::restore(const GlobalHistory::Checkpoint &cp)
{
    hist.restore(cp);
    for (auto &fold : folds)
        fold->recompute(hist);
}

} // namespace imli
