#include "src/history/history_manager.hh"

#include <cassert>

namespace imli
{

FoldedHistory *
HistoryManager::createFold(unsigned orig_length, unsigned folded_width)
{
    assert(orig_length >= 1);
    folds.push_back(
        std::make_unique<FoldedHistory>(orig_length, folded_width));
    return folds.back().get();
}

void
HistoryManager::push(bool taken, std::uint64_t pc)
{
    // Folds consume the outgoing bit (the one ageing out of each window)
    // before the buffer advances.
    for (auto &fold : folds)
        fold->update(taken, hist.bit(fold->origLength() - 1));
    hist.push(taken, pc);
}

void
HistoryManager::restore(const GlobalHistory::Checkpoint &cp)
{
    // Undo (or redo) the fold updates push() performed, newest-first when
    // rewinding and oldest-first when rolling forward.  The push that
    // wrote absolute position p consumed incoming = bit(p) and outgoing =
    // bit(p - length) (false before the trace start), so both are still
    // readable from the buffer by absolute position.
    const std::uint64_t cur = hist.headPointer();
    if (cp.head <= cur) {
        for (std::uint64_t p = cur; p-- > cp.head;) {
            for (auto &fold : folds) {
                const unsigned len = fold->origLength();
                fold->rewind(hist.bitAt(p),
                             p >= len && hist.bitAt(p - len));
            }
        }
    } else {
        for (std::uint64_t p = cur; p < cp.head; ++p) {
            for (auto &fold : folds) {
                const unsigned len = fold->origLength();
                fold->update(hist.bitAt(p),
                             p >= len && hist.bitAt(p - len));
            }
        }
    }
    hist.restore(cp);
}

} // namespace imli
