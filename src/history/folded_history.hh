/**
 * @file
 * Incrementally folded history registers (the TAGE/O-GEHL idiom).
 *
 * Indexing a table with a 300-bit history requires compressing it to the
 * table's index width.  Recomputing the XOR-fold on every prediction is
 * O(length); hardware instead maintains the folded value incrementally: on
 * each new history bit, rotate the fold and XOR in the incoming bit and the
 * outgoing (aged-out) bit.  This class mirrors that structure, including
 * rollback support driven by the underlying GlobalHistory buffer.
 */

#ifndef IMLI_SRC_HISTORY_FOLDED_HISTORY_HH
#define IMLI_SRC_HISTORY_FOLDED_HISTORY_HH

#include <cstdint>

#include "src/history/global_history.hh"

namespace imli
{

/**
 * A circular-shift-register fold of the @p origLength most recent global
 * history bits into @p foldedWidth bits.
 */
class FoldedHistory
{
  public:
    FoldedHistory() = default;

    /**
     * @param orig_length history length being compressed
     * @param folded_width output width in bits (1..31)
     */
    FoldedHistory(unsigned orig_length, unsigned folded_width);

    /**
     * Incorporate the newest history bit; @p outgoing is the bit that just
     * aged out of the window (history position orig_length before push).
     */
    void update(bool incoming, bool outgoing);

    /**
     * Exact inverse of update(): undo the most recent update, given the
     * same @p incoming / @p outgoing bits that were fed to it.  Lets a
     * restore walk the fold back in O(distance) instead of recomputing in
     * O(origLength) — the cost that makes per-branch checkpointing viable
     * in the pipeline simulator.
     */
    void rewind(bool incoming, bool outgoing);

    /** Current folded value. */
    std::uint32_t value() const { return folded; }

    /**
     * Recompute from scratch against @p hist (used for rollback and in
     * consistency assertions; O(origLength)).
     */
    void recompute(const GlobalHistory &hist);

    unsigned origLength() const { return length; }
    unsigned foldedWidth() const { return width; }

  private:
    std::uint32_t folded = 0;
    unsigned length = 0;       //!< compressed history length
    unsigned width = 1;        //!< output width
    unsigned outPoint = 0;     //!< position of the aged-out bit in the fold
};

} // namespace imli

#endif // IMLI_SRC_HISTORY_FOLDED_HISTORY_HH
