/**
 * @file
 * Model of the in-flight branch window a superscalar core must search to
 * maintain speculative local history (paper, Section 2.3.2, Figure 3).
 *
 * The local history table is updated at commit time only.  At prediction
 * time the hardware must check whether any in-flight (predicted but not
 * committed) branch maps to the same local-history entry; if so, the most
 * recent in-flight speculative history must be used instead of the table
 * contents.  That requires (a) storing the history alongside every
 * in-flight branch and (b) an associative search per fetch.  This class
 * implements that structure and counts its costs, so the library can put
 * numbers behind the paper's complexity argument (bench_sec44_storage and
 * the spec/ fetch model).
 */

#ifndef IMLI_SRC_HISTORY_INFLIGHT_WINDOW_HH
#define IMLI_SRC_HISTORY_INFLIGHT_WINDOW_HH

#include <cstdint>
#include <deque>
#include <optional>

#include "src/history/local_history.hh"

namespace imli
{

/**
 * Window of speculative branch instances, each carrying the speculative
 * local history its successors must observe.
 */
class InflightWindow
{
  public:
    /**
     * @param capacity maximum in-flight branches (ROB-limited)
     * @param history_bits width of the carried local history
     */
    InflightWindow(unsigned capacity, unsigned history_bits);

    /**
     * Record a newly predicted branch with the speculative history that
     * *follows* it (i.e., including its own predicted outcome).
     *
     * @param local_index local-history-table index of the branch
     * @param spec_history history after appending the predicted outcome
     * @return a ticket identifying the instance for squash/commit
     */
    std::uint64_t insert(unsigned local_index, std::uint64_t spec_history);

    /**
     * Associative search (youngest first) for the most recent in-flight
     * instance mapping to @p local_index.  Every call increments the
     * searched-entries counter — this is the per-fetch energy the paper
     * says real designs refuse to pay.
     */
    std::optional<std::uint64_t> lookup(unsigned local_index);

    /**
     * lookup() restricted to instances with ticket <= @p max_ticket.
     * This is the time-travel view the pipeline simulator's commit
     * sandwich needs: re-deriving a branch's fetch-time lookup state must
     * see only the in-flight instances that were already in the window at
     * that branch's fetch, without destroying the younger ones (they are
     * still in flight).  Entries skipped for being too young still count
     * as searched — the hardware comparators examine them either way.
     */
    std::optional<std::uint64_t> lookupBefore(unsigned local_index,
                                              std::uint64_t max_ticket);

    /**
     * Ticket of the most recent insert ever (0 before the first insert —
     * tickets start at 1, so 0 as a lookupBefore() bound means "nothing
     * visible" and as a squashAfter() bound means "squash everything").
     */
    std::uint64_t lastTicket() const { return nextTicket - 1; }

    /** Commit the oldest in-flight branch (it leaves the window). */
    void commitOldest();

    /**
     * Squash every instance younger than (inserted after) @p ticket.  The
     * bound need not name a live instance: a ticket older than every
     * resident entry (including 0, or one whose instance was already
     * evicted or committed) squashes the whole window, and a ticket from
     * the future (never issued yet) squashes nothing.  Both follow from
     * the one rule "pop while back().ticket > ticket" and are pinned by
     * tests — recovery code may hold tickets for instances that are gone.
     */
    void squashAfter(std::uint64_t ticket);

    /** Squash everything (pipeline flush). */
    void squashAll();

    std::size_t size() const { return window.size(); }
    unsigned capacity() const { return cap; }

    /**
     * Entries visited by lookup()/lookupBefore() so far (associative-
     * search cost).  A plain uint64 event counter: it wraps modulo 2^64
     * like every other counter in the library — at one entry per
     * nanosecond that is five centuries, so no saturation logic.
     */
    std::uint64_t entriesSearched() const { return searched; }

    /** Storage held by the window: history bits per in-flight branch. */
    std::uint64_t storageBits() const;

  private:
    struct Entry
    {
        std::uint64_t ticket;
        unsigned localIndex;
        std::uint64_t history;
    };

    std::deque<Entry> window; //!< oldest at front
    unsigned cap;
    unsigned histBits;
    std::uint64_t nextTicket = 1;
    std::uint64_t searched = 0;
};

} // namespace imli

#endif // IMLI_SRC_HISTORY_INFLIGHT_WINDOW_HH
