/**
 * @file
 * Global branch and path history with speculative-head checkpointing.
 *
 * The history is a circular bit buffer with two pointers (paper,
 * Section 2.3.1): the speculative head advances at prediction time, the
 * commit head at commit time.  Checkpointing the speculative head pointer
 * (a few bits) is all a superscalar core needs to recover the global
 * history after a misprediction — the contrast with local-history
 * management is the paper's central hardware argument.
 *
 * In immediate-update simulation only the speculative head moves; the
 * spec/ module exercises the two-pointer protocol explicitly, and the
 * pipeline simulator (src/sim/pipeline_simulator.hh) drives checkpoint /
 * restore per in-flight branch as hardware would.
 */

#ifndef IMLI_SRC_HISTORY_GLOBAL_HISTORY_HH
#define IMLI_SRC_HISTORY_GLOBAL_HISTORY_HH

#include <cstdint>
#include <vector>

namespace imli
{

/**
 * Circular global history buffer.  Bit i of the logical history is the
 * direction of the i-th most recent branch (0 = most recent).  A parallel
 * path-history register folds in low PC bits of each branch.
 */
class GlobalHistory
{
  public:
    /** @param capacity buffer capacity in bits; power of two, >= max hist. */
    explicit GlobalHistory(unsigned capacity = 4096);

    /** Append one outcome (and path bits) at the speculative head. */
    void push(bool taken, std::uint64_t pc);

    /** Logical history bit @p age ago (0 = most recent). */
    bool bit(unsigned age) const;

    /**
     * Raw buffer bit at absolute push position @p pos (the @p pos-th push
     * since construction); positions before the trace start read false.
     * Valid for any position still resident in the circular buffer —
     * including positions at or past a rewound head, which is what lets
     * HistoryManager redo folds incrementally on a forward restore.
     */
    bool bitAt(std::uint64_t pos) const;

    /**
     * Pack the @p length most recent bits into a word (bit 0 = most
     * recent).  @p length must be <= 64; longer histories are consumed
     * through FoldedHistory instead.
     */
    std::uint64_t recent(unsigned length) const;

    /** 64-bit path history (low PC bits of recent branches, shifted). */
    std::uint64_t path() const { return pathHist; }

    /** Number of pushes so far (monotonic, for checkpoint width math). */
    std::uint64_t headPointer() const { return head; }

    /**
     * Checkpoint of the speculative state: the head pointer and the path
     * register.  The buffer contents older than the head are immutable, so
     * restoring the pointer restores the history — this is what makes the
     * hardware cheap.
     */
    struct Checkpoint
    {
        std::uint64_t head = 0;
        std::uint64_t pathHist = 0;
    };

    Checkpoint save() const { return {head, pathHist}; }

    /**
     * Move the speculative head to @p cp.  Rewinding is the hardware
     * recovery path: bits pushed after the checkpoint become dead.  A
     * *forward* restore (to a checkpoint taken before the current head
     * was rewound) is also allowed — the pipeline simulator's commit
     * sandwich rewinds to a branch's fetch point, trains, and returns to
     * the fetch front; the buffer retains the in-between bits, so moving
     * the pointer forward restores them.  The caller guarantees the bits
     * between the two heads are still resident (|distance| bounded by the
     * buffer capacity minus the longest fold length).
     */
    void restore(const Checkpoint &cp);

    unsigned capacityBits() const
    {
        return static_cast<unsigned>(buffer.size());
    }

  private:
    std::vector<std::uint8_t> buffer; //!< one history bit per element
    std::uint64_t head = 0;           //!< speculative head (total pushes)
    std::uint64_t pathHist = 0;
    unsigned mask;
};

} // namespace imli

#endif // IMLI_SRC_HISTORY_GLOBAL_HISTORY_HH
