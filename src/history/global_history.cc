#include "src/history/global_history.hh"

#include <cassert>

#include "src/util/hashing.hh"

namespace imli
{

GlobalHistory::GlobalHistory(unsigned capacity)
    : buffer(capacity, 0), mask(capacity - 1)
{
    assert(isPowerOfTwo(capacity));
}

void
GlobalHistory::push(bool taken, std::uint64_t pc)
{
    buffer[head & mask] = taken ? 1 : 0;
    ++head;
    // Path history: 3 low PC bits per branch, as in the EV8/TAGE lineage.
    pathHist = (pathHist << 3) ^ ((pc >> 1) & 0x7);
}

bool
GlobalHistory::bit(unsigned age) const
{
    assert(age < buffer.size());
    if (age >= head)
        return false; // before the start of the trace
    return buffer[(head - 1 - age) & mask] != 0;
}

bool
GlobalHistory::bitAt(std::uint64_t pos) const
{
    return buffer[pos & mask] != 0;
}

std::uint64_t
GlobalHistory::recent(unsigned length) const
{
    assert(length <= 64);
    std::uint64_t word = 0;
    for (unsigned i = 0; i < length; ++i)
        word |= static_cast<std::uint64_t>(bit(i)) << i;
    return word;
}

void
GlobalHistory::restore(const Checkpoint &cp)
{
    // Backward = misprediction recovery; forward = the commit sandwich
    // returning to the fetch front (see the header).  Either way the
    // distance must not exceed the buffer, or the bits are gone.
    assert((cp.head <= head ? head - cp.head : cp.head - head) <=
           buffer.size());
    head = cp.head;
    pathHist = cp.pathHist;
}

} // namespace imli
