#include "src/history/folded_history.hh"

#include <cassert>

namespace imli
{

FoldedHistory::FoldedHistory(unsigned orig_length, unsigned folded_width)
    : length(orig_length), width(folded_width),
      outPoint(orig_length % folded_width)
{
    assert(folded_width >= 1 && folded_width < 32);
}

void
FoldedHistory::update(bool incoming, bool outgoing)
{
    // Rotate left by one and inject the incoming bit ...
    folded = (folded << 1) | (incoming ? 1 : 0);
    // ... remove the bit that aged out of the window ...
    folded ^= (outgoing ? 1u : 0u) << outPoint;
    // ... and wrap the rotation.
    folded ^= folded >> width;
    folded &= (1u << width) - 1;
}

void
FoldedHistory::rewind(bool incoming, bool outgoing)
{
    // update() computed, from the pre-state f (width bits):
    //   t1 = (f << 1) | incoming          (width+1 bits)
    //   t2 = t1 ^ (outgoing << outPoint)
    //   f' = (t2 ^ (t2 >> width)) & mask
    // t2 >> width is t1's top bit, i.e. f's top bit T.  Inverting:
    // bit 0 of f' is bit 0 of t2 xor T, and bit 0 of t2 is known from
    // incoming/outgoing, so T falls out; the rest unshifts.
    const std::uint32_t in = incoming ? 1u : 0u;
    const std::uint32_t out = outgoing ? 1u : 0u;
    const std::uint32_t top =
        (folded ^ in ^ (outPoint == 0 ? out : 0u)) & 1u;
    const std::uint32_t t2low = folded ^ top;
    const std::uint32_t t1low = t2low ^ (out << outPoint);
    folded = (top << (width - 1)) | (t1low >> 1);
    folded &= (1u << width) - 1;
}

void
FoldedHistory::recompute(const GlobalHistory &hist)
{
    // Reference fold: process bits oldest-to-newest through update() with
    // a zero outgoing bit until the window fills, then with real outgoing
    // bits.  Equivalent direct computation:
    folded = 0;
    for (unsigned age = length; age-- > 0;) {
        const bool b = hist.bit(age);
        folded = (folded << 1) | (b ? 1 : 0);
        folded ^= folded >> width;
        folded &= (1u << width) - 1;
    }
}

} // namespace imli
