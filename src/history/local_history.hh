/**
 * @file
 * Per-branch (local) history table.
 *
 * Local history records the recent outcomes of each static branch in a
 * table indexed by PC.  It is the second history dimension of Yeh & Patt
 * two-level prediction and the storage behind the local components of
 * TAGE-SC-L and FTL.  Its accuracy value is real but modest; its hardware
 * cost is the speculative-management problem modelled in
 * src/history/inflight_window.hh — the paper's motivation for IMLI.
 */

#ifndef IMLI_SRC_HISTORY_LOCAL_HISTORY_HH
#define IMLI_SRC_HISTORY_LOCAL_HISTORY_HH

#include <cstdint>
#include <vector>

#include "src/util/storage.hh"

namespace imli
{

/**
 * Table of per-branch outcome shift registers, untagged and indexed by
 * hashed PC (aliasing is part of the modelled hardware).
 */
class LocalHistoryTable
{
  public:
    /**
     * @param num_entries table entries (power of two)
     * @param history_bits history register width (1..64)
     */
    LocalHistoryTable(unsigned num_entries, unsigned history_bits);

    /** Current local history for @p pc (bit 0 = most recent outcome). */
    std::uint64_t read(std::uint64_t pc) const;

    /** Shift @p taken into the register for @p pc. */
    void update(std::uint64_t pc, bool taken);

    /** Table index used for @p pc (exposed for aliasing studies). */
    unsigned index(std::uint64_t pc) const;

    unsigned numEntries() const
    {
        return static_cast<unsigned>(table.size());
    }

    unsigned historyBits() const { return bits; }

    /** Storage cost of the table. */
    void account(StorageAccount &acct, const std::string &name) const;

  private:
    std::vector<std::uint64_t> table;
    unsigned bits;
    unsigned mask;
};

} // namespace imli

#endif // IMLI_SRC_HISTORY_LOCAL_HISTORY_HH
