/**
 * @file
 * Shared speculative history state for a composed predictor.
 *
 * A composed predictor (TAGE + statistical corrector + side predictors, or
 * GEHL + add-ons) owns exactly one HistoryManager.  It centralises the
 * global/path history and every incrementally folded compression of it, so
 * that one push keeps all folds coherent — mirroring hardware, where the
 * folded CSRs are updated in lock-step with the history shift register.
 */

#ifndef IMLI_SRC_HISTORY_HISTORY_MANAGER_HH
#define IMLI_SRC_HISTORY_HISTORY_MANAGER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "src/history/folded_history.hh"
#include "src/history/global_history.hh"

namespace imli
{

/** Global history plus a registry of folded views kept in sync. */
class HistoryManager
{
  public:
    explicit HistoryManager(unsigned capacity = 4096) : hist(capacity) {}

    /**
     * Create a folded view of the @p orig_length most recent bits at
     * @p folded_width bits.  The returned pointer remains valid for the
     * lifetime of the manager.  @p orig_length must be >= 1.
     */
    FoldedHistory *createFold(unsigned orig_length, unsigned folded_width);

    /** Append one history bit; updates every registered fold first. */
    void push(bool taken, std::uint64_t pc);

    const GlobalHistory &history() const { return hist; }

    /** Checkpoint = global history checkpoint (folds are derived state). */
    GlobalHistory::Checkpoint save() const { return hist.save(); }

    /**
     * Move to @p cp — backward (misprediction recovery) or forward (the
     * pipeline simulator's commit sandwich returning to the fetch front).
     * Folds are walked incrementally, one undo/redo step per history bit
     * of distance, using the bits still resident in the buffer; cost is
     * O(|distance| x folds), which is what makes per-commit restores in
     * the pipeline simulator affordable.  The walk is exact: it lands on
     * the same fold values a full recompute() would (pinned by tests).
     * The caller guarantees distance + longest fold length fits in the
     * buffer (the simulator caps the in-flight window far below it).
     */
    void restore(const GlobalHistory::Checkpoint &cp);

  private:
    GlobalHistory hist;
    std::vector<std::unique_ptr<FoldedHistory>> folds;
};

} // namespace imli

#endif // IMLI_SRC_HISTORY_HISTORY_MANAGER_HH
