#include "src/core/imli_components.hh"

namespace imli
{

ImliComponents::ImliComponents(const Config &config)
    : cfg(config), imliCount(config.counterBits),
      omliCount(config.omliCounterBits), outer(config.outer),
      sic(config.sic), oh(config.oh), omliSic(config.omliSic)
{
    outer.setUpdateDelay(cfg.ohUpdateDelay);
}

void
ImliComponents::fillContext(ScContext &ctx, std::uint64_t pc) const
{
    ctx.imliCount = imliCount.value();
    ctx.omliCount = cfg.enableOmli ? omliCount.value() : 0;
    if (cfg.enableOh) {
        const ImliOuterHistory::OuterBits bits =
            outer.read(pc, imliCount.value());
        ctx.ohBit = bits.ohBit;
        ctx.pipeBit = bits.pipeBit;
    } else {
        ctx.ohBit = false;
        ctx.pipeBit = false;
    }
}

void
ImliComponents::onResolved(std::uint64_t pc, std::uint64_t target,
                           bool taken)
{
    // The outer-history write uses the pre-update IMLI count: the branch
    // resolves within the iteration it was fetched in, even when it is
    // itself the backward branch that advances the counter.
    const unsigned imli_before = imliCount.value();
    obsCount.record(imli_before);
    if (cfg.enableOh)
        outer.write(pc, imli_before, taken);
    imliCount.onConditionalBranch(pc, target, taken);
    if (cfg.enableOmli)
        omliCount.onConditionalBranch(pc, target, taken, imli_before);
}

void
ImliComponents::attachProbes(obs::MetricsScope &scope)
{
    // Counter values span [0, 2^counterBits); log2(v+1) lands the top
    // value in bucket counterBits, so counterBits + 1 buckets cover the
    // range with no overflow folding.
    obsCount.sink = scope.histogram("imli/count",
                                    obs::Histogram::Kind::Log2,
                                    cfg.counterBits + 1);
}

void
ImliComponents::speculate(std::uint64_t pc, std::uint64_t target, bool dir)
{
    const unsigned imli_before = imliCount.value();
    if (cfg.enableOh)
        outer.updatePipe(pc, imli_before);
    imliCount.onConditionalBranch(pc, target, dir);
    if (cfg.enableOmli)
        omliCount.onConditionalBranch(pc, target, dir, imli_before);
}

std::vector<ScComponent *>
ImliComponents::components()
{
    std::vector<ScComponent *> comps;
    if (cfg.enableSic)
        comps.push_back(&sic);
    if (cfg.enableOh)
        comps.push_back(&oh);
    if (cfg.enableOmli)
        comps.push_back(&omliSic);
    return comps;
}

ImliComponents::Checkpoint
ImliComponents::save() const
{
    return {imliCount.save(), outer.savePipe(), omliCount.save()};
}

void
ImliComponents::restore(const Checkpoint &cp)
{
    imliCount.restore(cp.counter);
    outer.restorePipe(cp.pipe);
    omliCount.restore(cp.omli);
}

unsigned
ImliComponents::checkpointBits() const
{
    return imliCount.numBits() +
           (cfg.enableOh ? outer.config().pipeEntries : 0) +
           (cfg.enableOmli ? omliCount.checkpointBits() : 0);
}

void
ImliComponents::account(StorageAccount &acct) const
{
    // The SIC/OH voting tables are registered with the host's adder tree
    // and accounted there; this covers the state they share.
    imliCount.account(acct, "imli/counter");
    if (cfg.enableOh)
        outer.account(acct, "imli");
    if (cfg.enableOmli)
        omliCount.account(acct, "omli/counter");
}

void
ImliComponents::accountAll(StorageAccount &acct) const
{
    imliCount.account(acct, "imli/counter");
    if (cfg.enableSic)
        sic.account(acct);
    if (cfg.enableOh) {
        oh.account(acct);
        outer.account(acct, "imli");
    }
    if (cfg.enableOmli) {
        omliSic.account(acct);
        omliCount.account(acct, "omli/counter");
    }
}

} // namespace imli
