/**
 * @file
 * IMLI-SIC: the Same Iteration Correlation component (paper, Section 4.2).
 *
 * A single table of signed counters indexed with a hash of the IMLI
 * counter and the PC, added to the adder tree of the host neural
 * component.  It captures branches that (statistically) repeat their
 * outcome at the same inner-most-loop iteration across outer iterations
 * (Out[N][M] == Out[N-1][M]) — including loops with varying trip counts
 * and branches nested under conditionals, the two cases the wormhole
 * predictor structurally cannot track.  The paper finds a 512-entry table
 * captures most of the benefit; that is the default here, giving the
 * 384 bytes of the Section 4.4 budget.
 */

#ifndef IMLI_SRC_CORE_IMLI_SIC_HH
#define IMLI_SRC_CORE_IMLI_SIC_HH

#include <vector>

#include "src/predictors/sc_component.hh"
#include "src/util/counters.hh"

namespace imli
{

/** PC + IMLIcount indexed voting table. */
class ImliSic : public ScComponent
{
  public:
    struct Config
    {
        unsigned logEntries = 9;  //!< 512 entries (paper default)
        unsigned counterBits = 6;
        /**
         * Vote weight multiplier.  The reference statistical correctors
         * give the IMLI table the same weight as other tables; the
         * ablation bench sweeps this.
         */
        int weight = 1;
    };

    ImliSic() : ImliSic(Config()) {}

    explicit ImliSic(const Config &config);

    int vote(const ScContext &ctx) const override;
    void update(const ScContext &ctx, bool taken) override;
    void account(StorageAccount &acct) const override;
    std::string name() const override { return "imli-sic"; }

    const Config &config() const { return cfg; }

  private:
    unsigned index(const ScContext &ctx) const;

    Config cfg;
    std::vector<SignedCounter> table;
};

} // namespace imli

#endif // IMLI_SRC_CORE_IMLI_SIC_HH
