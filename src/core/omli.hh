/**
 * @file
 * Extension beyond the paper: the Outer Most Loop Iteration (OMLI)
 * counter and its cross-indexed voting table.
 *
 * The paper closes (Section 6) by noting that "future developments in
 * branch prediction research may identify other typical correlation
 * situations".  The natural next dimension after the inner iteration
 * index is the *outer* iteration index: branches whose outcome depends on
 * the outer-loop phase — e.g. the MM-4 inversion
 * Out[N][M] = base[M] XOR (N mod 2), or blocked algorithms alternating
 * behaviour between passes — are a function of (M, N) jointly.
 *
 * The OMLI counter extends the Section 4.1 heuristic one level up:
 *
 *   - a taken backward conditional branch is remembered as the loop
 *     currently iterating;
 *   - a not-taken backward branch at that PC *while the IMLI counter is
 *     non-zero* is the inner loop exiting: the OMLI counter increments
 *     (one more outer iteration completed);
 *   - any other not-taken backward branch closes an enclosing loop (the
 *     IMLI counter is already zero there): the OMLI counter resets.
 *
 * Like IMLIcount, OMLIcount is computable at fetch time and its
 * speculative state is the counter plus the remembered backedge PC hash.
 *
 * OmliSic is the cross table: signed counters indexed with
 * hash(PC, IMLIcount, OMLIcount mod 2^phaseBits).  With phaseBits = 1 it
 * distinguishes even/odd outer iterations, capturing period-2 outer
 * patterns that neither IMLI-SIC (phase-blind) nor IMLI-OH (needs the
 * outer-history storage) expresses directly.
 */

#ifndef IMLI_SRC_CORE_OMLI_HH
#define IMLI_SRC_CORE_OMLI_HH

#include <cstdint>
#include <vector>

#include "src/predictors/sc_component.hh"
#include "src/util/counters.hh"
#include "src/util/storage.hh"

namespace imli
{

/** Fetch-time outer-loop iteration counter. */
class OmliCounter
{
  public:
    /** @param num_bits counter width (the checkpointed state). */
    explicit OmliCounter(unsigned num_bits = 8);

    /** Current outer-loop iteration estimate. */
    unsigned value() const { return count; }

    /**
     * Observe one conditional branch (see file header for the rules).
     * @param imli_before the IMLI counter value at this branch's fetch
     *        (before its own update) — distinguishes inner-loop exits
     *        from enclosing-loop exits.
     */
    void onConditionalBranch(std::uint64_t pc, std::uint64_t target,
                             bool taken, unsigned imli_before);

    void reset();

    /** Speculative checkpoint: counter + inner-backedge tag. */
    struct Checkpoint
    {
        std::uint32_t count = 0;
        std::uint32_t innerTag = 0;
    };

    Checkpoint save() const { return {count, innerTag}; }
    void restore(const Checkpoint &cp);

    unsigned numBits() const { return bits; }

    /** Checkpoint width: counter bits + the 12-bit backedge tag. */
    unsigned checkpointBits() const { return bits + 12; }

    void account(StorageAccount &acct, const std::string &name) const;

  private:
    static std::uint32_t tagOf(std::uint64_t pc);

    unsigned bits;
    std::uint32_t maxCount;
    std::uint32_t count = 0;
    std::uint32_t innerTag = 0; //!< hashed PC of the current inner backedge
};

/** Cross-indexed voting table: hash(PC, IMLIcount, OMLI phase). */
class OmliSic : public ScComponent
{
  public:
    struct Config
    {
        unsigned logEntries = 10; //!< 1K entries (extension budget)
        unsigned counterBits = 6;
        unsigned phaseBits = 1;   //!< outer-phase bits folded in
        int weight = 3;           //!< same weighting as IMLI-SIC
    };

    OmliSic() : OmliSic(Config()) {}

    explicit OmliSic(const Config &config);

    int vote(const ScContext &ctx) const override;
    void update(const ScContext &ctx, bool taken) override;
    void account(StorageAccount &acct) const override;
    std::string name() const override { return "omli-sic"; }

    const Config &config() const { return cfg; }

  private:
    unsigned index(const ScContext &ctx) const;

    Config cfg;
    std::vector<SignedCounter> table;
};

} // namespace imli

#endif // IMLI_SRC_CORE_OMLI_HH
