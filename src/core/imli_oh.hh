/**
 * @file
 * IMLI-OH: the Outer History component (paper, Section 4.3).
 *
 * The voting table of the IMLI-OH component: 256 entries of signed
 * counters indexed with the PC hashed with the two outer-history bits
 * Out[N-1][M] and Out[N-1][M-1] recovered from the IMLI outer-history
 * storage (imli_outer_history.hh).  This captures the wormhole
 * correlations — Out[N][M] equal to (or the inverse of) the outcome of
 * the same branch at a neighbouring iteration of the previous outer-loop
 * iteration — without wormhole's per-entry long local histories.
 * 192 bytes in the Section 4.4 budget.
 */

#ifndef IMLI_SRC_CORE_IMLI_OH_HH
#define IMLI_SRC_CORE_IMLI_OH_HH

#include <vector>

#include "src/predictors/sc_component.hh"
#include "src/util/counters.hh"

namespace imli
{

/** PC + outer-history-bits indexed voting table. */
class ImliOh : public ScComponent
{
  public:
    struct Config
    {
        unsigned logEntries = 8;  //!< 256 entries (paper default)
        unsigned counterBits = 6;
        int weight = 1;
    };

    ImliOh() : ImliOh(Config()) {}

    explicit ImliOh(const Config &config);

    int vote(const ScContext &ctx) const override;
    void update(const ScContext &ctx, bool taken) override;
    void account(StorageAccount &acct) const override;
    std::string name() const override { return "imli-oh"; }

    const Config &config() const { return cfg; }

  private:
    unsigned index(const ScContext &ctx) const;

    Config cfg;
    std::vector<SignedCounter> table;
};

} // namespace imli

#endif // IMLI_SRC_CORE_IMLI_OH_HH
