/**
 * @file
 * Aggregation of the IMLI machinery for a host predictor (the "IMLIcount +
 * IMLI hist" box of the paper's Figures 5 and 6).
 *
 * Owns the IMLI counter, the outer-history storage and the two voting
 * tables, wires the per-branch dataflow between them, and exposes:
 *  - context filling at prediction time (counter value + outer bits);
 *  - per-branch resolution (outer-history write + counter heuristic);
 *  - the speculative checkpoint (counter + PIPE: 10 + 16 = 26 bits);
 *  - the Section 4.4 storage audit (708 bytes with both components).
 */

#ifndef IMLI_SRC_CORE_IMLI_COMPONENTS_HH
#define IMLI_SRC_CORE_IMLI_COMPONENTS_HH

#include <cstdint>
#include <vector>

#include "src/core/imli_counter.hh"
#include "src/core/imli_oh.hh"
#include "src/core/imli_outer_history.hh"
#include "src/core/imli_sic.hh"
#include "src/core/omli.hh"
#include "src/obs/metrics.hh"
#include "src/predictors/sc_component.hh"

namespace imli
{

/** Complete IMLI predictor-side state for one host predictor. */
class ImliComponents
{
  public:
    struct Config
    {
        bool enableSic = true;
        bool enableOh = true;
        /** The beyond-the-paper OMLI extension (DESIGN.md section 8). */
        bool enableOmli = false;
        ImliSic::Config sic;
        ImliOh::Config oh;
        OmliSic::Config omliSic;
        unsigned omliCounterBits = 8;
        ImliOuterHistory::Config outer;
        unsigned counterBits = 10;
        /** Modelled commit delay of the outer-history table (branches). */
        unsigned ohUpdateDelay = 0;
    };

    ImliComponents() : ImliComponents(Config()) {}

    explicit ImliComponents(const Config &config);

    /**
     * Fill the IMLI fields of a prediction context: the current counter
     * value and, when IMLI-OH is enabled, the two outer-history bits for
     * @p pc.  Call at prediction time, before any vote.
     */
    void fillContext(ScContext &ctx, std::uint64_t pc) const;

    /**
     * Per-branch resolution for every conditional branch: writes the
     * outer-history storage (pre-counter-update IMLI value) and then
     * applies the counter heuristic.
     */
    void onResolved(std::uint64_t pc, std::uint64_t target, bool taken);

    /**
     * Fetch-side speculative step (pipeline simulation, Section 4.3.2):
     * exactly onResolved() with @p dir the *predicted* direction, minus
     * the outer-history table write — the PIPE transfer and the counter
     * heuristic are the checkpointed speculative half, the table write is
     * deferred to the commit-time onResolved().  Mirrors
     * SpeculativeImliModel::specStep so the two models cannot drift.
     */
    void speculate(std::uint64_t pc, std::uint64_t target, bool dir);

    /** Voting tables to register with the host's adder tree. */
    std::vector<ScComponent *> components();

    /** Speculative state: counter value + PIPE vector. */
    struct Checkpoint
    {
        ImliCounter::Checkpoint counter = 0;
        ImliOuterHistory::Checkpoint pipe = 0;
        OmliCounter::Checkpoint omli;
    };

    Checkpoint save() const;
    void restore(const Checkpoint &cp);

    /** Width of the checkpoint in bits (the paper's 10 + 16 = 26). */
    unsigned checkpointBits() const;

    /**
     * Account the state not owned by the host adder tree (counter, outer
     * history, PIPE).  The SIC/OH voting tables are registered with the
     * host and accounted there.
     */
    void account(StorageAccount &acct) const;

    /**
     * Account everything including the voting tables — the standalone
     * Section 4.4 audit (708 bytes with the paper's default geometry).
     */
    void accountAll(StorageAccount &acct) const;

    /**
     * Resolve the IMLI counter-value histogram probe (log2 buckets, one
     * sample per resolved conditional — the distribution of inner-loop
     * iteration depths the counter actually saw).
     */
    void attachProbes(obs::MetricsScope &scope);

    const ImliCounter &counter() const { return imliCount; }
    const OmliCounter &omliCounter() const { return omliCount; }
    ImliOuterHistory &outerHistory() { return outer; }
    const Config &config() const { return cfg; }

  private:
    Config cfg;
    ImliCounter imliCount;
    OmliCounter omliCount;
    ImliOuterHistory outer;
    ImliSic sic;
    ImliOh oh;
    OmliSic omliSic;

    obs::ProbeHistogram obsCount;
};

} // namespace imli

#endif // IMLI_SRC_CORE_IMLI_COMPONENTS_HH
