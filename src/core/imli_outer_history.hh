/**
 * @file
 * The IMLI outer-history storage of the IMLI-OH component (paper,
 * Section 4.3.1, Figure 12): the 1-Kbit IMLI history table plus the
 * 16-bit PIPE vector.
 *
 * The outcome of the branch at address B in inner iteration M is stored at
 * bit address (B*64 + IMLIcount) mod 1024 — 16 branch slots of 64
 * iteration slots each.  Reading that address while predicting iteration M
 * of the *next* outer iteration recovers Out[N-1][M].  Because the write
 * for iteration M overwrites Out[N-1][M] before iteration M+1 needs it,
 * the PIPE ("Previous Inner iteration in Previous External iteration")
 * vector holds the just-overwritten bit per branch slot, making
 * Out[N-1][M-1] available as well.
 *
 * Speculative management (Section 4.3.2): PIPE (16 bits) is checkpointed;
 * the history table tolerates delayed commit-time update — the class
 * models a configurable update delay to reproduce the paper's experiment
 * (63-branch delay costs ~0.002 MPKI).
 */

#ifndef IMLI_SRC_CORE_IMLI_OUTER_HISTORY_HH
#define IMLI_SRC_CORE_IMLI_OUTER_HISTORY_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/util/storage.hh"

namespace imli
{

/** 1-Kbit outer-iteration history table + 16-bit PIPE vector. */
class ImliOuterHistory
{
  public:
    struct Config
    {
        unsigned tableBits = 1024;  //!< total history bits (power of two)
        unsigned iterBitsLog = 6;   //!< iteration slots per branch = 2^this
        unsigned pipeEntries = 16;  //!< PIPE vector width (power of two)
    };

    ImliOuterHistory() : ImliOuterHistory(Config()) {}

    explicit ImliOuterHistory(const Config &config);

    /** The two outer-history bits feeding the IMLI-OH table index. */
    struct OuterBits
    {
        bool ohBit = false;   //!< Out[N-1][M]
        bool pipeBit = false; //!< Out[N-1][M-1]
    };

    /** Read the outer history for branch @p pc at iteration @p imli_count. */
    OuterBits read(std::uint64_t pc, unsigned imli_count) const;

    /**
     * Record the resolved outcome for branch @p pc at @p imli_count:
     * PIPE[slot] <- table[addr]; table[addr] <- taken.  With a non-zero
     * update delay the write is queued and applied only after @p delay
     * further writes, modelling commit-time update on a deep window.
     */
    void write(std::uint64_t pc, unsigned imli_count, bool taken);

    /**
     * Speculative half of write(): PIPE[slot] <- table[addr].  Hardware
     * performs this at fetch (PIPE is checkpointed); the table write is
     * deferred to commit via commitTable().  Always immediate.
     */
    void updatePipe(std::uint64_t pc, unsigned imli_count);

    /**
     * Commit half of write(): table[addr] <- taken, honouring the modelled
     * update delay.  Does not touch PIPE.
     */
    void commitTable(std::uint64_t pc, unsigned imli_count, bool taken);

    /** Set the modelled commit delay, measured in conditional branches. */
    void setUpdateDelay(unsigned delay_branches);

    unsigned updateDelay() const { return delay; }

    /** Checkpoint: the PIPE vector only (Section 4.3.2). */
    using Checkpoint = std::uint32_t;

    Checkpoint savePipe() const;
    void restorePipe(Checkpoint cp);

    void account(StorageAccount &acct, const std::string &prefix) const;

    const Config &config() const { return cfg; }

  private:
    struct PendingWrite
    {
        std::uint32_t bitAddr;
        bool taken;
    };

    std::uint32_t bitAddress(std::uint64_t pc, unsigned imli_count) const;
    std::uint32_t pipeIndex(std::uint64_t pc) const;
    void apply(const PendingWrite &w);

    Config cfg;
    std::vector<std::uint8_t> table; //!< one history bit per element
    std::vector<std::uint8_t> pipe;  //!< one bit per branch slot
    unsigned delay = 0;
    std::deque<PendingWrite> pending;
};

} // namespace imli

#endif // IMLI_SRC_CORE_IMLI_OUTER_HISTORY_HH
