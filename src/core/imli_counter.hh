/**
 * @file
 * The Inner Most Loop Iteration counter (paper, Section 4.1).
 *
 * IMLIcount is the number of consecutive taken occurrences of the most
 * recently encountered *backward conditional branch*.  The paper's
 * fetch-time heuristic, verbatim:
 *
 *     if (backward) { if (taken) IMLIcount++; else IMLIcount = 0; }
 *
 * Backward conditional branches are assumed to be loop-closing branches,
 * and a loop whose body contains no backward branch is an inner-most loop;
 * hence the counter tracks the iteration index of the dynamically
 * inner-most loop.  Its speculative state is just the counter value
 * (10 bits, Section 4.4), checkpointable per fetch block — the property
 * that makes IMLI practical where local histories are not.
 */

#ifndef IMLI_SRC_CORE_IMLI_COUNTER_HH
#define IMLI_SRC_CORE_IMLI_COUNTER_HH

#include <cstdint>
#include <string>

#include "src/util/storage.hh"

namespace imli
{

/** Fetch-time inner-most-loop iteration counter. */
class ImliCounter
{
  public:
    /** @param num_bits counter width; the paper checkpoints 10 bits. */
    explicit ImliCounter(unsigned num_bits = 10);

    /** Current iteration number of the dynamic inner-most loop. */
    unsigned value() const { return count; }

    /**
     * Observe one conditional branch (the paper's heuristic).  Forward
     * conditional branches leave the counter untouched.
     *
     * @param pc branch address
     * @param target taken-target address (backward iff target < pc)
     * @param taken resolved (or predicted, at fetch time) direction
     */
    void onConditionalBranch(std::uint64_t pc, std::uint64_t target,
                             bool taken);

    /** Reset to iteration zero (trace start / context switch). */
    void reset() { count = 0; }

    /** Speculative checkpoint: the counter value alone. */
    using Checkpoint = std::uint32_t;

    Checkpoint save() const { return count; }
    void restore(Checkpoint cp) { count = cp; }

    unsigned numBits() const { return bits; }

    void account(StorageAccount &acct, const std::string &name) const;

  private:
    unsigned bits;
    std::uint32_t count = 0;
    std::uint32_t maxCount;
};

} // namespace imli

#endif // IMLI_SRC_CORE_IMLI_COUNTER_HH
