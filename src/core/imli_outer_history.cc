#include "src/core/imli_outer_history.hh"

#include <cassert>

#include "src/util/hashing.hh"

namespace imli
{

ImliOuterHistory::ImliOuterHistory(const Config &config)
    : cfg(config), table(config.tableBits, 0), pipe(config.pipeEntries, 0)
{
    assert(isPowerOfTwo(cfg.tableBits));
    assert(isPowerOfTwo(cfg.pipeEntries));
    assert(cfg.pipeEntries <= 32 && "PIPE checkpoint packs into 32 bits");
    assert((1u << cfg.iterBitsLog) <= cfg.tableBits);
}

std::uint32_t
ImliOuterHistory::bitAddress(std::uint64_t pc, unsigned imli_count) const
{
    // Branch slot from hashed PC bits; the IMLI count indexes within the
    // slot.  Counts beyond the slot capacity bleed into neighbouring slots
    // (intentional hardware aliasing, as in the reference code).
    const std::uint64_t slot = (pc >> 1) ^ (pc >> 5);
    return static_cast<std::uint32_t>(
        ((slot << cfg.iterBitsLog) + imli_count) & (cfg.tableBits - 1));
}

std::uint32_t
ImliOuterHistory::pipeIndex(std::uint64_t pc) const
{
    const std::uint64_t slot = (pc >> 1) ^ (pc >> 5);
    return static_cast<std::uint32_t>(slot & (cfg.pipeEntries - 1));
}

ImliOuterHistory::OuterBits
ImliOuterHistory::read(std::uint64_t pc, unsigned imli_count) const
{
    OuterBits bits;
    bits.ohBit = table[bitAddress(pc, imli_count)] != 0;
    bits.pipeBit = pipe[pipeIndex(pc)] != 0;
    return bits;
}

void
ImliOuterHistory::apply(const PendingWrite &w)
{
    table[w.bitAddr] = w.taken ? 1 : 0;
}

void
ImliOuterHistory::write(std::uint64_t pc, unsigned imli_count, bool taken)
{
    // The PIPE transfer is the fetch-side (speculative, checkpointed)
    // half: it always happens immediately.  Only the table write is
    // subject to the modelled commit delay (Section 4.3.2).
    updatePipe(pc, imli_count);
    commitTable(pc, imli_count, taken);
}

void
ImliOuterHistory::updatePipe(std::uint64_t pc, unsigned imli_count)
{
    pipe[pipeIndex(pc)] = table[bitAddress(pc, imli_count)];
}

void
ImliOuterHistory::commitTable(std::uint64_t pc, unsigned imli_count,
                              bool taken)
{
    const PendingWrite w{bitAddress(pc, imli_count), taken};
    if (delay == 0) {
        apply(w);
        return;
    }
    pending.push_back(w);
    while (pending.size() > delay) {
        apply(pending.front());
        pending.pop_front();
    }
}

void
ImliOuterHistory::setUpdateDelay(unsigned delay_branches)
{
    // Flush the queue when shrinking the window so no write is lost.
    while (pending.size() > delay_branches) {
        apply(pending.front());
        pending.pop_front();
    }
    delay = delay_branches;
}

ImliOuterHistory::Checkpoint
ImliOuterHistory::savePipe() const
{
    std::uint32_t cp = 0;
    for (unsigned i = 0; i < cfg.pipeEntries; ++i)
        cp |= static_cast<std::uint32_t>(pipe[i] & 1u) << i;
    return cp;
}

void
ImliOuterHistory::restorePipe(Checkpoint cp)
{
    for (unsigned i = 0; i < cfg.pipeEntries; ++i)
        pipe[i] = (cp >> i) & 1u;
}

void
ImliOuterHistory::account(StorageAccount &acct,
                          const std::string &prefix) const
{
    acct.add(prefix + "/history_table", cfg.tableBits);
    acct.add(prefix + "/pipe", cfg.pipeEntries);
}

} // namespace imli
