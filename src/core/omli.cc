#include "src/core/omli.hh"

#include <cassert>

#include "src/util/hashing.hh"

namespace imli
{

OmliCounter::OmliCounter(unsigned num_bits)
    : bits(num_bits), maxCount((1u << num_bits) - 1)
{
    assert(num_bits >= 1 && num_bits <= 16);
}

std::uint32_t
OmliCounter::tagOf(std::uint64_t pc)
{
    return static_cast<std::uint32_t>(pcHash(pc) & 0xfff);
}

void
OmliCounter::onConditionalBranch(std::uint64_t pc, std::uint64_t target,
                                 bool taken, unsigned imli_before)
{
    const bool backward = target < pc;
    if (!backward)
        return;
    if (taken) {
        // A taken backward branch is (by the Section 4.1 heuristic) the
        // loop currently iterating; remember which loop that is.
        innerTag = tagOf(pc);
    } else if (tagOf(pc) == innerTag && innerTag != 0 &&
               imli_before > 0) {
        // The loop that was iterating just exited mid-flight: one more
        // iteration of its enclosing (outer) loop completed.
        if (count < maxCount)
            ++count;
    } else {
        // An enclosing loop exited (the inner counter was already zero):
        // the outer phase is over.
        count = 0;
        innerTag = 0;
    }
}

void
OmliCounter::reset()
{
    count = 0;
    innerTag = 0;
}

void
OmliCounter::restore(const Checkpoint &cp)
{
    count = cp.count;
    innerTag = cp.innerTag;
}

void
OmliCounter::account(StorageAccount &acct, const std::string &name) const
{
    acct.add(name, bits + 12);
}

// --------------------------------------------------------------------------
// OmliSic
// --------------------------------------------------------------------------

OmliSic::OmliSic(const Config &config)
    : cfg(config),
      table(1u << config.logEntries, SignedCounter(config.counterBits))
{
    assert(cfg.phaseBits >= 1 && cfg.phaseBits <= 8);
}

unsigned
OmliSic::index(const ScContext &ctx) const
{
    const std::uint64_t phase =
        ctx.omliCount & maskBits(cfg.phaseBits);
    const std::uint64_t h = hashCombine(
        pcHash(ctx.pc) * 5,
        (static_cast<std::uint64_t>(ctx.imliCount) << 8) | phase);
    return static_cast<unsigned>(h & maskBits(cfg.logEntries));
}

int
OmliSic::vote(const ScContext &ctx) const
{
    // Like IMLI-SIC, abstain outside inner loops.
    if (ctx.imliCount == 0)
        return 0;
    return cfg.weight * table[index(ctx)].centered();
}

void
OmliSic::update(const ScContext &ctx, bool taken)
{
    if (ctx.imliCount == 0)
        return;
    table[index(ctx)].update(taken);
}

void
OmliSic::account(StorageAccount &acct) const
{
    acct.add("omli-sic", (1ull << cfg.logEntries) * cfg.counterBits);
}

} // namespace imli
