#include "src/core/imli_counter.hh"

#include <cassert>

namespace imli
{

ImliCounter::ImliCounter(unsigned num_bits)
    : bits(num_bits), maxCount((1u << num_bits) - 1)
{
    assert(num_bits >= 1 && num_bits <= 20);
}

void
ImliCounter::onConditionalBranch(std::uint64_t pc, std::uint64_t target,
                                 bool taken)
{
    const bool backward = target < pc;
    if (!backward)
        return;
    if (taken) {
        if (count < maxCount)
            ++count;
    } else {
        count = 0;
    }
}

void
ImliCounter::account(StorageAccount &acct, const std::string &name) const
{
    acct.add(name, bits);
}

} // namespace imli
