#include "src/core/imli_oh.hh"

#include "src/util/hashing.hh"

namespace imli
{

ImliOh::ImliOh(const Config &config)
    : cfg(config),
      table(1u << config.logEntries, SignedCounter(config.counterBits))
{
}

unsigned
ImliOh::index(const ScContext &ctx) const
{
    const std::uint64_t oh_bits =
        (ctx.ohBit ? 1u : 0u) | (ctx.pipeBit ? 2u : 0u);
    const std::uint64_t h = hashCombine(pcHash(ctx.pc) * 3, oh_bits);
    return static_cast<unsigned>(h & maskBits(cfg.logEntries));
}

int
ImliOh::vote(const ScContext &ctx) const
{
    return cfg.weight * table[index(ctx)].centered();
}

void
ImliOh::update(const ScContext &ctx, bool taken)
{
    table[index(ctx)].update(taken);
}

void
ImliOh::account(StorageAccount &acct) const
{
    acct.add("imli-oh", (1ull << cfg.logEntries) * cfg.counterBits);
}

} // namespace imli
