#include "src/core/imli_sic.hh"

#include "src/util/hashing.hh"

namespace imli
{

ImliSic::ImliSic(const Config &config)
    : cfg(config),
      table(1u << config.logEntries, SignedCounter(config.counterBits))
{
}

unsigned
ImliSic::index(const ScContext &ctx) const
{
    const std::uint64_t h =
        hashCombine(pcHash(ctx.pc), static_cast<std::uint64_t>(ctx.imliCount));
    return static_cast<unsigned>(h & maskBits(cfg.logEntries));
}

int
ImliSic::vote(const ScContext &ctx) const
{
    // Outside any inner loop (IMLIcount == 0) the table would degenerate
    // into a redundant PC-bias table and only perturb the adder tree; the
    // component abstains there and lets the bias tables do their job.
    if (ctx.imliCount == 0)
        return 0;
    return cfg.weight * table[index(ctx)].centered();
}

void
ImliSic::update(const ScContext &ctx, bool taken)
{
    if (ctx.imliCount == 0)
        return;
    table[index(ctx)].update(taken);
}

void
ImliSic::account(StorageAccount &acct) const
{
    acct.add("imli-sic",
             (1ull << cfg.logEntries) * cfg.counterBits);
}

} // namespace imli
