/**
 * @file
 * Binary trace file format (.imt — "imli trace").
 *
 * Layout (little-endian):
 *   magic   "IMLT"            4 bytes
 *   version u32               currently 1
 *   nameLen u32, name bytes
 *   count   u64               number of records
 *   records...                varint-delta encoded (see below)
 *
 * Each record encodes:
 *   header byte: [ type:3 | taken:1 | pcSameAsLast+4:1 | reserved:3 ]
 *   pc          varint (zig-zag delta from previous pc), unless implied
 *   target      varint (zig-zag delta from pc)
 *   instsBefore varint
 *
 * The format is intentionally simple; its job is (a) to let users persist
 * generated workloads and re-run experiments without regeneration and (b)
 * to provide an adapter point for converting external trace formats.
 */

#ifndef IMLI_SRC_TRACE_TRACE_IO_HH
#define IMLI_SRC_TRACE_TRACE_IO_HH

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "src/trace/trace.hh"

namespace imli
{

/** Error raised on malformed trace files. */
class TraceFormatError : public std::runtime_error
{
  public:
    explicit TraceFormatError(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {}
};

/** Serialise @p trace to @p os in .imt format. */
void writeTrace(const Trace &trace, std::ostream &os);

/** Serialise @p trace to @p path; throws std::runtime_error on I/O error. */
void writeTraceFile(const Trace &trace, const std::string &path);

/** Parse an .imt stream; throws TraceFormatError on malformed input. */
Trace readTrace(std::istream &is);

/** Parse an .imt file; throws on I/O or format error. */
Trace readTraceFile(const std::string &path);

} // namespace imli

#endif // IMLI_SRC_TRACE_TRACE_IO_HH
