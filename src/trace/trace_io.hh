/**
 * @file
 * Binary trace file format (.imt — "imli trace").
 *
 * Layout (little-endian):
 *   magic   "IMLT"            4 bytes
 *   version u32               currently 1
 *   nameLen u32, name bytes
 *   count   u64               number of records
 *   records...                varint-delta encoded (see below)
 *
 * Each record encodes:
 *   header byte: [ type:3 | taken:1 | pcSameAsLast+4:1 | reserved:3 ]
 *   pc          varint (zig-zag delta from previous pc), unless implied
 *   target      varint (zig-zag delta from pc)
 *   instsBefore varint
 *
 * The format is intentionally simple; its job is (a) to let users persist
 * generated workloads and re-run experiments without regeneration and (b)
 * to provide an adapter point for converting external trace formats.
 */

#ifndef IMLI_SRC_TRACE_TRACE_IO_HH
#define IMLI_SRC_TRACE_TRACE_IO_HH

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/trace/branch_source.hh"
#include "src/trace/trace.hh"
#include "src/trace/trace_error.hh"

namespace imli
{

/** Serialise @p trace to @p os in .imt format. */
void writeTrace(const Trace &trace, std::ostream &os);

/** Serialise @p trace to @p path; throws std::runtime_error on I/O error. */
void writeTraceFile(const Trace &trace, const std::string &path);

/**
 * Stream @p source to @p path in .imt format, one chunk at a time (the
 * record count in the header is back-patched at the end, so nothing is
 * materialized).  Returns the number of records written.  Byte-identical
 * to materializing the stream and calling writeTraceFile.
 */
std::uint64_t writeTraceFile(BranchSource &source, const std::string &path);

/** Parse an .imt stream; throws TraceFormatError on malformed input. */
Trace readTrace(std::istream &is);

/** Parse an .imt file; throws on I/O or format error. */
Trace readTraceFile(const std::string &path);

/**
 * Streaming .imt reader: decodes one chunk of records at a time, so peak
 * memory is O(chunk) regardless of file size.  Draining it yields exactly
 * readTraceFile(path) (same codec underneath).
 */
class FileBranchSource : public BranchSource
{
  public:
    /**
     * Opens @p path and parses the header; throws on I/O/format error.
     * @p name_override replaces the name embedded in the file header
     * when non-empty (recorded benchmarks stream under their benchmark
     * name, whatever the file was originally generated as).
     */
    explicit FileBranchSource(const std::string &path,
                              std::size_t chunk_records =
                                  defaultChunkRecords,
                              const std::string &name_override = "");

    const std::string &name() const override;
    BranchSpan nextChunk() override;
    void reset() override;

    /** Record count promised by the file header. */
    std::uint64_t totalRecords() const { return count; }

  private:
    std::string path;
    std::ifstream is;
    std::string traceName;
    std::uint64_t count = 0;
    std::uint64_t decoded = 0;  //!< records decoded so far
    std::uint64_t lastPc = 0;   //!< delta-codec state
    std::streampos bodyStart;
    std::size_t chunkRecords;
    std::vector<BranchRecord> buffer;
};

} // namespace imli

#endif // IMLI_SRC_TRACE_TRACE_IO_HH
