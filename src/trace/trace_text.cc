#include "src/trace/trace_text.hh"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace imli
{

namespace
{

const char *const textMagic = "imli-trace-v1";

std::string
typeToken(BranchType type)
{
    return branchTypeName(type);
}

BranchType
tokenToType(const std::string &token)
{
    for (int i = 0; i <= static_cast<int>(BranchType::Return); ++i) {
        const auto type = static_cast<BranchType>(i);
        if (branchTypeName(type) == token)
            return type;
    }
    throw TraceFormatError("unknown branch type token: " + token);
}

} // anonymous namespace

void
writeTraceText(const Trace &trace, std::ostream &os)
{
    os << textMagic << ' '
       << (trace.name().empty() ? "-" : trace.name()) << '\n';
    os << std::hex;
    for (const BranchRecord &rec : trace.branches()) {
        os << rec.pc << ' ' << rec.target << ' ' << typeToken(rec.type)
           << ' ' << (rec.taken ? 'T' : 'N') << ' ' << std::dec
           << rec.instsBefore << std::hex << '\n';
    }
    os << std::dec;
}

Trace
readTraceText(std::istream &is)
{
    std::string header;
    if (!std::getline(is, header))
        throw TraceFormatError("empty text trace");
    std::istringstream hs(header);
    std::string magic, name;
    hs >> magic >> name;
    if (magic != textMagic)
        throw TraceFormatError("bad text trace header");
    Trace trace(name == "-" ? "" : name);

    std::string line;
    std::size_t line_no = 1;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty())
            continue;
        std::istringstream ls(line);
        BranchRecord rec;
        std::string type_token, dir_token;
        ls >> std::hex >> rec.pc >> rec.target >> type_token >> dir_token
           >> std::dec >> rec.instsBefore;
        if (ls.fail())
            throw TraceFormatError("malformed text trace line " +
                                   std::to_string(line_no));
        rec.type = tokenToType(type_token);
        if (dir_token == "T")
            rec.taken = true;
        else if (dir_token == "N")
            rec.taken = false;
        else
            throw TraceFormatError("bad direction token at line " +
                                   std::to_string(line_no));
        trace.append(rec);
    }
    return trace;
}

void
writeTraceTextFile(const Trace &trace, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        throw std::runtime_error("cannot open for write: " + path);
    writeTraceText(trace, os);
    if (!os)
        throw std::runtime_error("I/O error writing: " + path);
}

Trace
readTraceTextFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        throw std::runtime_error("cannot open for read: " + path);
    return readTraceText(is);
}

} // namespace imli
