#include "src/trace/branch_record.hh"

namespace imli
{

std::string
branchTypeName(BranchType type)
{
    switch (type) {
      case BranchType::CondDirect:
        return "cond";
      case BranchType::UncondDirect:
        return "jump";
      case BranchType::UncondIndirect:
        return "ijump";
      case BranchType::Call:
        return "call";
      case BranchType::IndirectCall:
        return "icall";
      case BranchType::Return:
        return "ret";
    }
    return "unknown";
}

} // namespace imli
