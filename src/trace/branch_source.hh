/**
 * @file
 * Producer side of the streaming data path: pull-based, chunked iteration
 * over an ordered BranchRecord stream.
 *
 * A BranchSource hands out read-only spans of consecutive records; an
 * empty span marks end of stream.  Consumers (the simulator) never see
 * more than one chunk at a time, so peak memory is O(chunk) regardless of
 * stream length.  Three backends exist:
 *
 *  - TraceBranchSource (here): adapter over an in-memory Trace; chunks are
 *    subspans of the materialized vector, no copy.  For golden tests and
 *    small runs.
 *  - GeneratorBranchSource (src/workloads/generator_source.hh): workload
 *    kernels emit rounds into a bounded buffer on demand; nothing is ever
 *    materialized.  The suite runner's backend.
 *  - FileBranchSource (src/trace/trace_io.hh): streaming .imt reader,
 *    decoding one chunk at a time.  For persisted / external traces.
 *
 * Every backend supports reset() back to the start of the stream, so one
 * source object can serve repeated passes (e.g. warm-up studies).
 */

#ifndef IMLI_SRC_TRACE_BRANCH_SOURCE_HH
#define IMLI_SRC_TRACE_BRANCH_SOURCE_HH

#include <cstddef>
#include <string>

#include "src/trace/trace.hh"

namespace imli
{

/** A read-only view of consecutive records inside a source's chunk. */
struct BranchSpan
{
    const BranchRecord *records = nullptr;
    std::size_t count = 0;

    bool empty() const { return count == 0; }
    const BranchRecord *begin() const { return records; }
    const BranchRecord *end() const { return records + count; }
    const BranchRecord &operator[](std::size_t i) const
    {
        return records[i];
    }
};

/** Abstract pull-based producer of an ordered branch stream. */
class BranchSource
{
  public:
    /** Chunk granularity used when callers do not specify one. */
    static constexpr std::size_t defaultChunkRecords = 65536;

    virtual ~BranchSource() = default;

    /** Stream name (benchmark / trace name carried into SimResult). */
    virtual const std::string &name() const = 0;

    /**
     * The next chunk of the stream, or an empty span at end of stream.
     * The span stays valid until the next nextChunk() / reset() call on
     * the same source.
     */
    virtual BranchSpan nextChunk() = 0;

    /** Rewind to the beginning of the stream. */
    virtual void reset() = 0;
};

/** Adapter serving an existing in-memory Trace as chunked spans. */
class TraceBranchSource : public BranchSource
{
  public:
    /** @p trace must outlive the source; spans alias its storage. */
    explicit TraceBranchSource(const Trace &trace,
                               std::size_t chunk_records =
                                   defaultChunkRecords);

    const std::string &name() const override;
    BranchSpan nextChunk() override;
    void reset() override;

  private:
    const Trace &trace;
    std::size_t chunkRecords;
    std::size_t cursor = 0;
};

/**
 * Materialize the remainder of @p source into a Trace named after it.
 * The streaming counterpart of generateTrace/readTraceFile; mostly for
 * tests and tools that need random access.  @p reserve_hint pre-sizes
 * the trace when the caller knows the stream length.
 */
Trace drainSource(BranchSource &source, std::size_t reserve_hint = 0);

} // namespace imli

#endif // IMLI_SRC_TRACE_BRANCH_SOURCE_HH
