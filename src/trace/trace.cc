#include "src/trace/trace.hh"

// Trace is header-only; this translation unit anchors the module in the
// build graph.
