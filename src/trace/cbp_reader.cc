#include "src/trace/cbp_reader.hh"

#include <algorithm>
#include <istream>
#include <ostream>

namespace imli
{

namespace
{

constexpr char cbpMagic[4] = {'C', 'B', 'P', 'T'};
constexpr std::uint32_t cbpVersion = 1;
constexpr std::size_t cbpHeaderBytes = 8;   //!< magic + version
constexpr std::size_t cbpRecordBytes = 22;  //!< pc, target, insts, op, taken

void
putLe(std::ostream &os, std::uint64_t v, int bytes)
{
    for (int i = 0; i < bytes; ++i)
        os.put(static_cast<char>((v >> (8 * i)) & 0xff));
}

/** Decode @p bytes little-endian integer from a raw buffer. */
std::uint64_t
getLe(const unsigned char *p, int bytes)
{
    std::uint64_t v = 0;
    for (int i = 0; i < bytes; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

void
putCbpHeader(std::ostream &os)
{
    os.write(cbpMagic, sizeof(cbpMagic));
    putLe(os, cbpVersion, 4);
}

/** Validate magic + version; @p what names the file in errors. */
void
getCbpHeader(std::istream &is, const std::string &what)
{
    unsigned char header[cbpHeaderBytes] = {};
    is.read(reinterpret_cast<char *>(header), sizeof(header));
    if (is.gcount() != static_cast<std::streamsize>(sizeof(header)))
        throw TraceFormatError(what + ": truncated CBP header");
    if (!std::equal(header, header + 4,
                    reinterpret_cast<const unsigned char *>(cbpMagic)))
        throw TraceFormatError(what + ": bad CBP magic (not a CBP trace)");
    const std::uint64_t version = getLe(header + 4, 4);
    if (version != cbpVersion)
        throw TraceFormatError(what + ": unsupported CBP version " +
                               std::to_string(version));
}

void
putCbpRecord(std::ostream &os, const BranchRecord &rec)
{
    putLe(os, rec.pc, 8);
    putLe(os, rec.target, 8);
    putLe(os, rec.instsBefore, 4);
    os.put(static_cast<char>(cbpOpFromBranchType(rec.type)));
    os.put(rec.taken ? 1 : 0);
}

/**
 * Decode the next record, or return false at a clean EOF.  A partial
 * record (EOF inside the 22 bytes) is damage, not end of stream.
 */
bool
getCbpRecord(std::istream &is, const std::string &what, BranchRecord &rec)
{
    unsigned char raw[cbpRecordBytes];
    is.read(reinterpret_cast<char *>(raw), sizeof(raw));
    if (is.gcount() == 0) {
        // Only a genuine end of file ends the stream; a mid-file read
        // failure (badbit: failing disk, dropped mount) must not pass
        // for a shorter recording.
        if (is.bad() || !is.eof())
            throw TraceFormatError(what +
                                   ": I/O error while reading CBP body");
        return false;
    }
    if (is.gcount() != static_cast<std::streamsize>(sizeof(raw)))
        throw TraceFormatError(what + ": truncated CBP record at offset " +
                               std::to_string(static_cast<long long>(
                                   is.gcount())) +
                               " bytes into the final record");
    rec.pc = getLe(raw, 8);
    rec.target = getLe(raw + 8, 8);
    rec.instsBefore = static_cast<std::uint32_t>(getLe(raw + 16, 4));
    try {
        rec.type = branchTypeFromCbpOp(raw[20]);
    } catch (const TraceFormatError &e) {
        // Body damage surfaces mid-run (the probe only checks the header
        // and tail): name the file so the operator can tell which of a
        // mixed suite's recordings is broken.
        throw TraceFormatError(what + ": " + e.what());
    }
    if (raw[21] > 1)
        throw TraceFormatError(what + ": invalid taken byte " +
                               std::to_string(raw[21]));
    rec.taken = raw[21] == 1;
    return true;
}

} // anonymous namespace

BranchType
branchTypeFromCbpOp(std::uint8_t op)
{
    switch (static_cast<CbpOpType>(op)) {
      case CbpOpType::JmpDirectUncond:
        return BranchType::UncondDirect;
      case CbpOpType::JmpIndirectUncond:
        return BranchType::UncondIndirect;
      case CbpOpType::JmpDirectCond:
        return BranchType::CondDirect;
      case CbpOpType::CallDirect:
        return BranchType::Call;
      case CbpOpType::CallIndirect:
        return BranchType::IndirectCall;
      case CbpOpType::Ret:
        return BranchType::Return;
    }
    throw TraceFormatError("unknown CBP op code " + std::to_string(op));
}

CbpOpType
cbpOpFromBranchType(BranchType type)
{
    switch (type) {
      case BranchType::UncondDirect:
        return CbpOpType::JmpDirectUncond;
      case BranchType::UncondIndirect:
        return CbpOpType::JmpIndirectUncond;
      case BranchType::CondDirect:
        return CbpOpType::JmpDirectCond;
      case BranchType::Call:
        return CbpOpType::CallDirect;
      case BranchType::IndirectCall:
        return CbpOpType::CallIndirect;
      case BranchType::Return:
        return CbpOpType::Ret;
    }
    throw TraceFormatError("unmappable branch type " +
                           std::to_string(static_cast<unsigned>(type)));
}

std::string
pathStem(const std::string &path)
{
    const std::size_t slash = path.find_last_of("/\\");
    const std::size_t start = slash == std::string::npos ? 0 : slash + 1;
    std::size_t dot = path.find_last_of('.');
    if (dot == std::string::npos || dot <= start)
        dot = path.size();
    return path.substr(start, dot - start);
}

std::string
pathExtension(const std::string &path)
{
    const std::size_t slash = path.find_last_of("/\\");
    const std::size_t start = slash == std::string::npos ? 0 : slash + 1;
    const std::size_t dot = path.find_last_of('.');
    if (dot == std::string::npos || dot <= start)
        return "";
    return path.substr(dot);
}

CbpFileBranchSource::CbpFileBranchSource(const std::string &path,
                                         const std::string &name,
                                         std::size_t chunk_records)
    : path(path), is(path, std::ios::binary),
      traceName(name.empty() ? pathStem(path) : name),
      chunkRecords(chunk_records == 0 ? 1 : chunk_records)
{
    if (!is)
        throw std::runtime_error("cannot open CBP trace for read: " + path);
    getCbpHeader(is, path);
    bodyStart = is.tellg();
}

const std::string &
CbpFileBranchSource::name() const
{
    return traceName;
}

BranchSpan
CbpFileBranchSource::nextChunk()
{
    buffer.clear();
    buffer.reserve(chunkRecords);
    BranchRecord rec;
    while (buffer.size() < chunkRecords && getCbpRecord(is, path, rec))
        buffer.push_back(rec);
    decoded += buffer.size();
    return BranchSpan{buffer.data(), buffer.size()};
}

void
CbpFileBranchSource::reset()
{
    is.clear();
    is.seekg(bodyStart);
    if (!is)
        throw std::runtime_error("cannot rewind CBP trace: " + path);
    decoded = 0;
    buffer.clear();
}

Trace
readCbpTrace(std::istream &is, const std::string &name)
{
    getCbpHeader(is, name.empty() ? "<stream>" : name);
    Trace trace(name);
    BranchRecord rec;
    while (getCbpRecord(is, name.empty() ? "<stream>" : name, rec))
        trace.append(rec);
    return trace;
}

Trace
readCbpFile(const std::string &path, const std::string &name)
{
    CbpFileBranchSource source(path, name);
    return drainSource(source);
}

void
writeCbpTrace(const Trace &trace, std::ostream &os)
{
    putCbpHeader(os);
    for (const BranchRecord &rec : trace.branches())
        putCbpRecord(os, rec);
}

std::uint64_t
writeCbpFile(BranchSource &source, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        throw std::runtime_error("cannot open CBP trace for write: " + path);
    putCbpHeader(os);
    std::uint64_t written = 0;
    for (BranchSpan span = source.nextChunk(); !span.empty();
         span = source.nextChunk()) {
        for (const BranchRecord &rec : span)
            putCbpRecord(os, rec);
        written += span.count;
    }
    if (!os)
        throw std::runtime_error("I/O error while writing CBP trace: " +
                                 path);
    return written;
}

void
probeCbpFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw std::runtime_error("cannot open CBP trace for read: " + path);
    getCbpHeader(is, path);
    // Body must be whole records: a torn tail means a damaged recording.
    const std::streampos body = is.tellg();
    is.seekg(0, std::ios::end);
    const std::streamoff body_bytes = is.tellg() - body;
    if (body_bytes % static_cast<std::streamoff>(cbpRecordBytes) != 0)
        throw TraceFormatError(
            path + ": CBP body is " + std::to_string(body_bytes) +
            " bytes, not a multiple of the " +
            std::to_string(cbpRecordBytes) + "-byte record size");
}

} // namespace imli
