/**
 * @file
 * In-memory branch trace.
 *
 * A Trace is the interchange format between the workload generators, the
 * binary trace files and the simulator: an ordered sequence of
 * BranchRecords plus a name and total instruction count.
 */

#ifndef IMLI_SRC_TRACE_TRACE_HH
#define IMLI_SRC_TRACE_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/trace/branch_record.hh"
#include "src/trace/branch_sink.hh"

namespace imli
{

/** An ordered branch stream with instruction-count bookkeeping. */
class Trace : public BranchSink
{
  public:
    Trace() = default;

    explicit Trace(std::string name) : traceName(std::move(name)) {}

    /** Append one dynamic branch. */
    void
    append(const BranchRecord &rec) override
    {
        records.push_back(rec);
        instructions += rec.instsBefore + 1; // +1 for the branch itself
        if (isConditional(rec.type))
            ++conditionals;
    }

    const std::string &name() const { return traceName; }
    void setName(std::string n) { traceName = std::move(n); }

    const std::vector<BranchRecord> &branches() const { return records; }

    std::size_t size() const { return records.size(); }
    bool empty() const { return records.empty(); }

    const BranchRecord &operator[](std::size_t i) const { return records[i]; }

    /** Total instructions represented by the trace (branches included). */
    std::uint64_t instructionCount() const { return instructions; }

    /** Number of conditional branches (the graded class). */
    std::uint64_t conditionalCount() const { return conditionals; }

    void
    reserve(std::size_t n)
    {
        records.reserve(n);
    }

    void
    clear()
    {
        records.clear();
        instructions = 0;
        conditionals = 0;
    }

  private:
    std::string traceName;
    std::vector<BranchRecord> records;
    std::uint64_t instructions = 0;
    std::uint64_t conditionals = 0;
};

} // namespace imli

#endif // IMLI_SRC_TRACE_TRACE_HH
