#include "src/trace/trace_io.hh"

#include <fstream>
#include <istream>
#include <ostream>

namespace imli
{

namespace
{

constexpr char traceMagic[4] = {'I', 'M', 'L', 'T'};
constexpr std::uint32_t traceVersion = 1;

void
putVarint(std::ostream &os, std::uint64_t v)
{
    while (v >= 0x80) {
        os.put(static_cast<char>((v & 0x7f) | 0x80));
        v >>= 7;
    }
    os.put(static_cast<char>(v));
}

std::uint64_t
getVarint(std::istream &is)
{
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
        const int c = is.get();
        if (c == std::char_traits<char>::eof())
            throw TraceFormatError("unexpected end of trace stream");
        v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
        if (!(c & 0x80))
            break;
        shift += 7;
        if (shift >= 64)
            throw TraceFormatError("varint overflow");
    }
    return v;
}

std::uint64_t
zigzagEncode(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
zigzagDecode(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

void
putU32(std::ostream &os, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        os.put(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t
getU32(std::istream &is)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
        const int c = is.get();
        if (c == std::char_traits<char>::eof())
            throw TraceFormatError("unexpected end of trace header");
        v |= static_cast<std::uint32_t>(c & 0xff) << (8 * i);
    }
    return v;
}

void
putU64(std::ostream &os, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        os.put(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint64_t
getU64(std::istream &is)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
        const int c = is.get();
        if (c == std::char_traits<char>::eof())
            throw TraceFormatError("unexpected end of trace header");
        v |= static_cast<std::uint64_t>(c & 0xff) << (8 * i);
    }
    return v;
}

/** Write the fixed header: magic, version, name, record count. */
void
putHeader(std::ostream &os, const std::string &name, std::uint64_t count)
{
    os.write(traceMagic, sizeof(traceMagic));
    putU32(os, traceVersion);
    putU32(os, static_cast<std::uint32_t>(name.size()));
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
    putU64(os, count);
}

void
putRecord(std::ostream &os, const BranchRecord &rec, std::uint64_t &last_pc)
{
    const std::uint8_t header =
        static_cast<std::uint8_t>(
            (static_cast<unsigned>(rec.type) & 0x7) |
            (rec.taken ? 0x08 : 0x00));
    os.put(static_cast<char>(header));
    putVarint(os, zigzagEncode(static_cast<std::int64_t>(rec.pc) -
                               static_cast<std::int64_t>(last_pc)));
    putVarint(os, zigzagEncode(static_cast<std::int64_t>(rec.target) -
                               static_cast<std::int64_t>(rec.pc)));
    putVarint(os, rec.instsBefore);
    last_pc = rec.pc;
}

/** Parsed .imt header. */
struct TraceHeader
{
    std::string name;
    std::uint64_t count = 0;
};

TraceHeader
getHeader(std::istream &is)
{
    char magic[4] = {};
    is.read(magic, sizeof(magic));
    if (is.gcount() != sizeof(magic) ||
        !std::equal(magic, magic + 4, traceMagic))
        throw TraceFormatError("bad trace magic");
    const std::uint32_t version = getU32(is);
    if (version != traceVersion)
        throw TraceFormatError("unsupported trace version " +
                               std::to_string(version));
    const std::uint32_t name_len = getU32(is);
    if (name_len > (1u << 20))
        throw TraceFormatError("implausible trace name length");
    TraceHeader header;
    header.name.resize(name_len);
    is.read(header.name.data(), name_len);
    if (is.gcount() != static_cast<std::streamsize>(name_len))
        throw TraceFormatError("truncated trace name");
    header.count = getU64(is);
    return header;
}

BranchRecord
getRecord(std::istream &is, std::uint64_t &last_pc)
{
    const int header = is.get();
    if (header == std::char_traits<char>::eof())
        throw TraceFormatError("truncated trace body");
    BranchRecord rec;
    const unsigned type_bits = static_cast<unsigned>(header) & 0x7;
    if (type_bits > static_cast<unsigned>(BranchType::Return))
        throw TraceFormatError("invalid branch type in trace");
    rec.type = static_cast<BranchType>(type_bits);
    rec.taken = (header & 0x08) != 0;
    rec.pc = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(last_pc) + zigzagDecode(getVarint(is)));
    rec.target = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(rec.pc) + zigzagDecode(getVarint(is)));
    const std::uint64_t insts = getVarint(is);
    if (insts > 0xffffffffULL)
        throw TraceFormatError("implausible instruction gap");
    rec.instsBefore = static_cast<std::uint32_t>(insts);
    last_pc = rec.pc;
    return rec;
}

} // anonymous namespace

void
writeTrace(const Trace &trace, std::ostream &os)
{
    putHeader(os, trace.name(), trace.size());
    std::uint64_t last_pc = 0;
    for (const BranchRecord &rec : trace.branches())
        putRecord(os, rec, last_pc);
}

void
writeTraceFile(const Trace &trace, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        throw std::runtime_error("cannot open trace file for write: " + path);
    writeTrace(trace, os);
    if (!os)
        throw std::runtime_error("I/O error while writing trace: " + path);
}

std::uint64_t
writeTraceFile(BranchSource &source, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        throw std::runtime_error("cannot open trace file for write: " + path);
    // Record count is unknown until the stream ends: write a placeholder
    // and back-patch it.  Its offset is fixed once the name is written.
    putHeader(os, source.name(), 0);
    const std::streampos count_pos =
        static_cast<std::streamoff>(4 + 4 + 4 + source.name().size());
    std::uint64_t written = 0;
    std::uint64_t last_pc = 0;
    for (BranchSpan span = source.nextChunk(); !span.empty();
         span = source.nextChunk()) {
        for (const BranchRecord &rec : span)
            putRecord(os, rec, last_pc);
        written += span.count;
    }
    os.seekp(count_pos);
    putU64(os, written);
    if (!os)
        throw std::runtime_error("I/O error while writing trace: " + path);
    return written;
}

Trace
readTrace(std::istream &is)
{
    const TraceHeader header = getHeader(is);
    Trace trace(header.name);
    trace.reserve(header.count);
    std::uint64_t last_pc = 0;
    for (std::uint64_t i = 0; i < header.count; ++i)
        trace.append(getRecord(is, last_pc));
    return trace;
}

Trace
readTraceFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw std::runtime_error("cannot open trace file for read: " + path);
    return readTrace(is);
}

FileBranchSource::FileBranchSource(const std::string &path,
                                   std::size_t chunk_records,
                                   const std::string &name_override)
    : path(path), is(path, std::ios::binary),
      chunkRecords(chunk_records == 0 ? 1 : chunk_records)
{
    if (!is)
        throw std::runtime_error("cannot open trace file for read: " + path);
    const TraceHeader header = getHeader(is);
    traceName = name_override.empty() ? header.name : name_override;
    count = header.count;
    bodyStart = is.tellg();
}

const std::string &
FileBranchSource::name() const
{
    return traceName;
}

BranchSpan
FileBranchSource::nextChunk()
{
    if (decoded >= count)
        return BranchSpan{};
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(chunkRecords, count - decoded));
    buffer.clear();
    buffer.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        buffer.push_back(getRecord(is, lastPc));
    decoded += n;
    return BranchSpan{buffer.data(), buffer.size()};
}

void
FileBranchSource::reset()
{
    is.clear();
    is.seekg(bodyStart);
    if (!is)
        throw std::runtime_error("cannot rewind trace file: " + path);
    decoded = 0;
    lastPc = 0;
    buffer.clear();
}

} // namespace imli
