/**
 * @file
 * Consumer side of the streaming data path: anything that accepts a
 * sequence of BranchRecords one at a time.
 *
 * Workload kernels emit into a BranchSink instead of a concrete Trace, so
 * the same kernel code can fill an in-memory Trace (golden tests, small
 * runs), a bounded chunk buffer (the streaming generator source) or a
 * file writer, without materializing the whole stream.
 */

#ifndef IMLI_SRC_TRACE_BRANCH_SINK_HH
#define IMLI_SRC_TRACE_BRANCH_SINK_HH

#include "src/trace/branch_record.hh"

namespace imli
{

/** Abstract consumer of an ordered branch stream. */
class BranchSink
{
  public:
    virtual ~BranchSink() = default;

    /** Accept the next dynamic branch of the stream. */
    virtual void append(const BranchRecord &rec) = 0;
};

} // namespace imli

#endif // IMLI_SRC_TRACE_BRANCH_SINK_HH
