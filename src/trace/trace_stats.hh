/**
 * @file
 * Descriptive statistics over a branch trace.
 *
 * Used by the trace_tools example and by workload-generator tests to verify
 * that synthetic benchmarks have the intended composition (share of
 * conditionals, taken rate, number of static branches, backward-branch
 * share, loop nesting signature).
 */

#ifndef IMLI_SRC_TRACE_TRACE_STATS_HH
#define IMLI_SRC_TRACE_TRACE_STATS_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/trace/trace.hh"

namespace imli
{

/** Aggregate statistics for one trace. */
struct TraceStats
{
    std::uint64_t records = 0;        //!< total dynamic branches
    std::uint64_t instructions = 0;   //!< total instructions
    std::uint64_t conditionals = 0;   //!< dynamic conditional branches
    std::uint64_t takenConditionals = 0;
    std::uint64_t backwardConditionals = 0;
    std::uint64_t staticBranches = 0; //!< distinct branch PCs
    std::uint64_t staticConditionals = 0;
    /** Dynamic counts per branch type. */
    std::map<BranchType, std::uint64_t> perType;
    /**
     * Conditional-branch direction entropy in bits: the binary entropy
     * of each static conditional's taken rate, weighted by its dynamic
     * execution count.  0 means every branch is perfectly biased (a
     * bimodal table would be enough); 1 means directions look like coin
     * flips per branch.  A rough predictability floor for the trace.
     */
    double conditionalEntropy = 0.0;
    /**
     * Loop-depth profile: dynamic count of taken backward conditionals
     * executing at each loop-nesting depth (1 = outermost), inferred
     * from nested backward-branch intervals and capped at
     * kMaxLoopProfileDepth.  Synthetic kernels show their nesting
     * signature here; a flat profile means loop predictors have little
     * structure to latch onto.
     */
    std::map<unsigned, std::uint64_t> loopDepth;

    /** Depth cap for the loop profile (and its inference stack). */
    static constexpr unsigned kMaxLoopProfileDepth = 8;

    /** Fraction of conditional branches that are taken. */
    double takenRate() const;

    /** Average instructions per dynamic branch record. */
    double instsPerBranch() const;

    /** Multi-line human-readable summary. */
    std::string toString() const;
};

/**
 * Streaming accumulator behind computeStats: feed records in stream
 * order, read the finished TraceStats at the end.  One definition of
 * every statistic, shared between the materialized path (computeStats)
 * and the corpus characterization layer (src/corpus/characterize.hh),
 * so a stat computed from a generated stream, an .imt file or a .cbp
 * file of the same trace is identical by construction.
 */
class TraceStatsBuilder
{
  public:
    /** Accumulate one record; must be called in stream order. */
    void add(const BranchRecord &rec);

    /** The statistics over every record added so far. */
    TraceStats finish() const;

  private:
    /** Per-static-conditional direction tallies for the entropy term. */
    struct PcTally
    {
        std::uint64_t count = 0;
        std::uint64_t taken = 0;
    };

    /** A loop interval [target, pc] closed by a taken backward branch. */
    struct LoopInterval
    {
        std::uint64_t target;
        std::uint64_t pc;
    };

    TraceStats stats;
    std::map<std::uint64_t, PcTally> condTally;
    std::set<std::uint64_t> staticPcs;
    std::set<std::uint64_t> staticCondPcs;
    std::vector<LoopInterval> nest;
};

/** Compute statistics for @p trace in one pass. */
TraceStats computeStats(const Trace &trace);

} // namespace imli

#endif // IMLI_SRC_TRACE_TRACE_STATS_HH
