/**
 * @file
 * The unit of trace-driven simulation: one dynamic branch instance.
 *
 * The record mirrors the information the CBP4 framework hands to a
 * predictor: the branch PC, its class (conditional / unconditional,
 * direct / indirect, call / return), the taken direction, the target, and
 * the number of non-branch instructions retired since the previous branch
 * (needed to express accuracy as mispredictions per kilo-instruction).
 */

#ifndef IMLI_SRC_TRACE_BRANCH_RECORD_HH
#define IMLI_SRC_TRACE_BRANCH_RECORD_HH

#include <cstdint>
#include <string>

namespace imli
{

/** Branch classes as distinguished by the CBP-style framework. */
enum class BranchType : std::uint8_t
{
    CondDirect = 0,      //!< conditional direct jump (the predicted class)
    UncondDirect = 1,    //!< unconditional direct jump
    UncondIndirect = 2,  //!< unconditional indirect jump
    Call = 3,            //!< direct call
    IndirectCall = 4,    //!< indirect call
    Return = 5,          //!< function return
};

/** Printable name of a branch type. */
std::string branchTypeName(BranchType type);

/** True for the only class the conditional predictor is graded on. */
inline bool
isConditional(BranchType type)
{
    return type == BranchType::CondDirect;
}

/** One dynamic branch instance in a trace. */
struct BranchRecord
{
    std::uint64_t pc = 0;        //!< address of the branch instruction
    std::uint64_t target = 0;    //!< taken target address
    BranchType type = BranchType::CondDirect;
    bool taken = false;          //!< actual resolved direction
    /** Non-branch instructions retired since the previous record. */
    std::uint32_t instsBefore = 0;

    /** Backward branches close loop bodies (paper, Section 4.1). */
    bool isBackward() const { return target < pc; }

    bool
    operator==(const BranchRecord &other) const
    {
        return pc == other.pc && target == other.target &&
               type == other.type && taken == other.taken &&
               instsBefore == other.instsBefore;
    }
};

} // namespace imli

#endif // IMLI_SRC_TRACE_BRANCH_RECORD_HH
