/**
 * @file
 * CBP-format branch trace codec: the external-trace ingestion backend.
 *
 * Models the championship (CBP-style) trace interface: a flat stream of
 * fixed-width records, one per dynamic branch, classified by an OpType
 * code, with no record count in the header — the stream simply ends at
 * EOF, exactly like piping a championship trace through the framework.
 * That is the structural opposite of the native .imt format (counted,
 * varint-delta compressed), which is why the two exercise different
 * reader paths and why `trace_tools import` exists to convert between
 * them.
 *
 * Layout (little-endian):
 *   magic   "CBPT"            4 bytes
 *   version u32               currently 1
 *   records until EOF, each exactly 22 bytes:
 *     pc      u64             branch instruction address
 *     target  u64             taken target address
 *     insts   u32             non-branch instructions since previous record
 *     opType  u8              CBP op code (see CbpOpType)
 *     taken   u8              0 / 1 resolved direction
 *
 * A truncated final record, an unknown op code or a taken byte other
 * than 0/1 raise TraceFormatError: recorded traces are immutable inputs,
 * so any damage means the file must not be silently half-read.
 */

#ifndef IMLI_SRC_TRACE_CBP_READER_HH
#define IMLI_SRC_TRACE_CBP_READER_HH

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/trace/branch_source.hh"
#include "src/trace/trace.hh"
#include "src/trace/trace_error.hh"

namespace imli
{

/** CBP-style branch op codes carried in the record's opType byte. */
enum class CbpOpType : std::uint8_t
{
    JmpDirectUncond = 1,
    JmpIndirectUncond = 2,
    JmpDirectCond = 3,   //!< the predicted class
    CallDirect = 4,
    CallIndirect = 5,
    Ret = 6,
};

/** Map a CBP op code to the internal class; throws on unknown codes. */
BranchType branchTypeFromCbpOp(std::uint8_t op);

/** Map an internal branch class to its CBP op code. */
CbpOpType cbpOpFromBranchType(BranchType type);

/**
 * Streaming CBP trace reader: decodes one chunk of fixed-width records
 * at a time, so peak memory is O(chunk) however large the file.  The
 * record count is unknown up front (CBP streams end at EOF), so there is
 * no totalRecords(); consumers just pull until the empty span.
 */
class CbpFileBranchSource : public BranchSource
{
  public:
    /**
     * Opens @p path and validates the header; throws TraceFormatError /
     * std::runtime_error on damage or I/O failure.  @p name becomes the
     * stream name; empty derives it from the file name (stem of the
     * path), since the CBP header carries no name.
     */
    explicit CbpFileBranchSource(const std::string &path,
                                 const std::string &name = "",
                                 std::size_t chunk_records =
                                     defaultChunkRecords);

    const std::string &name() const override;
    BranchSpan nextChunk() override;
    void reset() override;

    /** Records decoded so far (across all served chunks). */
    std::uint64_t decodedRecords() const { return decoded; }

  private:
    std::string path;
    std::ifstream is;
    std::string traceName;
    std::uint64_t decoded = 0;
    std::streampos bodyStart;
    std::size_t chunkRecords;
    std::vector<BranchRecord> buffer;
};

/** Parse a whole CBP stream; throws TraceFormatError on malformed input. */
Trace readCbpTrace(std::istream &is, const std::string &name);

/** Parse a whole CBP file (convenience drain of CbpFileBranchSource). */
Trace readCbpFile(const std::string &path, const std::string &name = "");

/** Serialise @p trace to @p os in CBP format. */
void writeCbpTrace(const Trace &trace, std::ostream &os);

/**
 * Stream @p source to @p path in CBP format; returns records written.
 * Used to synthesize recorded-style scenario files and by tests; the CBP
 * record is lossless for BranchRecord, so write-then-read round-trips
 * exactly.
 */
std::uint64_t writeCbpFile(BranchSource &source, const std::string &path);

/**
 * Cheap validity probe: opens @p path and checks the header, without
 * reading the body.  Throws std::runtime_error (missing / unreadable) or
 * TraceFormatError (bad magic / version / torn record tail) with a
 * message naming the path.  Benchmark-spec validation runs this so a
 * mixed suite fails before any simulation starts, not mid-run.
 */
void probeCbpFile(const std::string &path);

/** "stem" of a path: file name without directory or final extension. */
std::string pathStem(const std::string &path);

/**
 * Final extension of a path including the dot ("dir/x.cbp" -> ".cbp"),
 * or "" when the leaf has none.  Shares pathStem's rule: the dot must
 * be inside the leaf and not its first character, so dotted directories
 * ("/v1.0/trace") and dotfiles ("dir/.cbp") have no extension.
 */
std::string pathExtension(const std::string &path);

} // namespace imli

#endif // IMLI_SRC_TRACE_CBP_READER_HH
