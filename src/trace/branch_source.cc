#include "src/trace/branch_source.hh"

#include <algorithm>

namespace imli
{

TraceBranchSource::TraceBranchSource(const Trace &trace,
                                     std::size_t chunk_records)
    : trace(trace), chunkRecords(chunk_records == 0 ? 1 : chunk_records)
{
}

const std::string &
TraceBranchSource::name() const
{
    return trace.name();
}

BranchSpan
TraceBranchSource::nextChunk()
{
    const std::size_t total = trace.size();
    if (cursor >= total)
        return BranchSpan{};
    const std::size_t n = std::min(chunkRecords, total - cursor);
    BranchSpan span{trace.branches().data() + cursor, n};
    cursor += n;
    return span;
}

void
TraceBranchSource::reset()
{
    cursor = 0;
}

Trace
drainSource(BranchSource &source, std::size_t reserve_hint)
{
    Trace trace(source.name());
    trace.reserve(reserve_hint);
    for (BranchSpan span = source.nextChunk(); !span.empty();
         span = source.nextChunk())
        for (const BranchRecord &rec : span)
            trace.append(rec);
    return trace;
}

} // namespace imli
