/**
 * @file
 * Error type shared by every trace codec (.imt, text, CBP).
 *
 * Lives in its own header so format readers don't have to include each
 * other just to throw the common error.
 */

#ifndef IMLI_SRC_TRACE_TRACE_ERROR_HH
#define IMLI_SRC_TRACE_TRACE_ERROR_HH

#include <stdexcept>
#include <string>

namespace imli
{

/** Raised on malformed trace files, whatever the format. */
class TraceFormatError : public std::runtime_error
{
  public:
    explicit TraceFormatError(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {}
};

} // namespace imli

#endif // IMLI_SRC_TRACE_TRACE_ERROR_HH
