/**
 * @file
 * Human-readable text trace format.
 *
 * One record per line:
 *
 *     <pc-hex> <target-hex> <type> <T|N> <insts-before>
 *
 * preceded by a single header line "imli-trace-v1 <name>".  The format
 * exists for debugging, for diffing traces in code review, and as the
 * adapter point for converting external trace formats with ordinary text
 * tools; the binary .imt format (trace_io.hh) is the efficient one.
 */

#ifndef IMLI_SRC_TRACE_TRACE_TEXT_HH
#define IMLI_SRC_TRACE_TRACE_TEXT_HH

#include <iosfwd>
#include <string>

#include "src/trace/trace.hh"
#include "src/trace/trace_io.hh"

namespace imli
{

/** Serialise @p trace as text. */
void writeTraceText(const Trace &trace, std::ostream &os);

/** Parse a text trace; throws TraceFormatError on malformed input. */
Trace readTraceText(std::istream &is);

/** File convenience wrappers. */
void writeTraceTextFile(const Trace &trace, const std::string &path);
Trace readTraceTextFile(const std::string &path);

} // namespace imli

#endif // IMLI_SRC_TRACE_TRACE_TEXT_HH
