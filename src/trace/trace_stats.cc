#include "src/trace/trace_stats.hh"

#include <cmath>
#include <map>
#include <set>
#include <sstream>
#include <vector>

namespace imli
{

double
TraceStats::takenRate() const
{
    return conditionals == 0
               ? 0.0
               : static_cast<double>(takenConditionals) /
                     static_cast<double>(conditionals);
}

double
TraceStats::instsPerBranch() const
{
    return records == 0 ? 0.0
                        : static_cast<double>(instructions) /
                              static_cast<double>(records);
}

std::string
TraceStats::toString() const
{
    std::ostringstream os;
    os << "  records:              " << records << '\n'
       << "  instructions:         " << instructions << '\n'
       << "  conditionals:         " << conditionals << '\n'
       << "  taken rate:           " << takenRate() << '\n'
       << "  backward conditional: " << backwardConditionals << '\n'
       << "  static branches:      " << staticBranches << '\n'
       << "  static conditionals:  " << staticConditionals << '\n'
       << "  insts/branch:         " << instsPerBranch() << '\n'
       << "  cond entropy (bits):  " << conditionalEntropy << '\n';
    for (const auto &[type, count] : perType)
        os << "  type " << branchTypeName(type) << ": " << count << '\n';
    for (const auto &[depth, count] : loopDepth)
        os << "  loop depth " << depth << ":         " << count << '\n';
    return os.str();
}

namespace
{

/** Per-static-conditional direction tallies for the entropy term. */
struct PcTally
{
    std::uint64_t count = 0;
    std::uint64_t taken = 0;
};

/** Binary entropy of a taken probability, in bits. */
double
binaryEntropy(double p)
{
    if (p <= 0.0 || p >= 1.0)
        return 0.0;
    return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

/** A loop interval [target, pc] closed by a taken backward branch. */
struct LoopInterval
{
    std::uint64_t target;
    std::uint64_t pc;

    bool
    contains(const BranchRecord &rec) const
    {
        return target <= rec.target && rec.pc <= pc;
    }
};

} // anonymous namespace

TraceStats
computeStats(const Trace &trace)
{
    TraceStats stats;
    std::set<std::uint64_t> static_pcs;
    std::set<std::uint64_t> static_cond_pcs;
    std::map<std::uint64_t, PcTally> cond_tally;
    // Active loop nest: intervals of taken backward branches, innermost
    // on top.  Bounded by the profile cap, so pathological traces cannot
    // grow the stack.
    std::vector<LoopInterval> nest;

    stats.records = trace.size();
    stats.instructions = trace.instructionCount();
    for (const BranchRecord &rec : trace.branches()) {
        ++stats.perType[rec.type];
        static_pcs.insert(rec.pc);
        if (isConditional(rec.type)) {
            ++stats.conditionals;
            static_cond_pcs.insert(rec.pc);
            PcTally &tally = cond_tally[rec.pc];
            ++tally.count;
            if (rec.taken)
                ++stats.takenConditionals;
            if (rec.taken)
                ++tally.taken;
            if (rec.isBackward())
                ++stats.backwardConditionals;
            if (rec.taken && rec.isBackward()) {
                // Leave every loop whose body does not enclose this
                // branch; an enclosing interval means we iterate inside
                // it, and the identical interval is the same loop
                // re-iterating (not deeper nesting).
                while (!nest.empty() && !nest.back().contains(rec))
                    nest.pop_back();
                const bool reiterating =
                    !nest.empty() && nest.back().target == rec.target &&
                    nest.back().pc == rec.pc;
                if (!reiterating &&
                    nest.size() < TraceStats::kMaxLoopProfileDepth)
                    nest.push_back({rec.target, rec.pc});
                const auto depth = static_cast<unsigned>(nest.size());
                ++stats.loopDepth[depth == 0 ? 1u : depth];
            }
        }
    }
    stats.staticBranches = static_pcs.size();
    stats.staticConditionals = static_cond_pcs.size();

    if (stats.conditionals > 0) {
        double weighted = 0.0;
        for (const auto &[pc, tally] : cond_tally) {
            const double p = static_cast<double>(tally.taken) /
                             static_cast<double>(tally.count);
            weighted += static_cast<double>(tally.count) * binaryEntropy(p);
        }
        stats.conditionalEntropy =
            weighted / static_cast<double>(stats.conditionals);
    }
    return stats;
}

} // namespace imli
