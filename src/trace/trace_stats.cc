#include "src/trace/trace_stats.hh"

#include <cmath>
#include <sstream>

namespace imli
{

double
TraceStats::takenRate() const
{
    return conditionals == 0
               ? 0.0
               : static_cast<double>(takenConditionals) /
                     static_cast<double>(conditionals);
}

double
TraceStats::instsPerBranch() const
{
    return records == 0 ? 0.0
                        : static_cast<double>(instructions) /
                              static_cast<double>(records);
}

std::string
TraceStats::toString() const
{
    std::ostringstream os;
    os << "  records:              " << records << '\n'
       << "  instructions:         " << instructions << '\n'
       << "  conditionals:         " << conditionals << '\n'
       << "  taken rate:           " << takenRate() << '\n'
       << "  backward conditional: " << backwardConditionals << '\n'
       << "  static branches:      " << staticBranches << '\n'
       << "  static conditionals:  " << staticConditionals << '\n'
       << "  insts/branch:         " << instsPerBranch() << '\n'
       << "  cond entropy (bits):  " << conditionalEntropy << '\n';
    for (const auto &[type, count] : perType)
        os << "  type " << branchTypeName(type) << ": " << count << '\n';
    for (const auto &[depth, count] : loopDepth)
        os << "  loop depth " << depth << ":         " << count << '\n';
    return os.str();
}

namespace
{

/** Binary entropy of a taken probability, in bits. */
double
binaryEntropy(double p)
{
    if (p <= 0.0 || p >= 1.0)
        return 0.0;
    return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

} // anonymous namespace

void
TraceStatsBuilder::add(const BranchRecord &rec)
{
    ++stats.records;
    stats.instructions += rec.instsBefore + 1; // +1 for the branch itself
    ++stats.perType[rec.type];
    staticPcs.insert(rec.pc);
    if (!isConditional(rec.type))
        return;
    ++stats.conditionals;
    staticCondPcs.insert(rec.pc);
    PcTally &tally = condTally[rec.pc];
    ++tally.count;
    if (rec.taken)
        ++stats.takenConditionals;
    if (rec.taken)
        ++tally.taken;
    if (rec.isBackward())
        ++stats.backwardConditionals;
    if (rec.taken && rec.isBackward()) {
        // Leave every loop whose body does not enclose this branch; an
        // enclosing interval means we iterate inside it, and the
        // identical interval is the same loop re-iterating (not deeper
        // nesting).
        const auto contains = [&rec](const LoopInterval &loop) {
            return loop.target <= rec.target && rec.pc <= loop.pc;
        };
        while (!nest.empty() && !contains(nest.back()))
            nest.pop_back();
        const bool reiterating = !nest.empty() &&
                                 nest.back().target == rec.target &&
                                 nest.back().pc == rec.pc;
        if (!reiterating &&
            nest.size() < TraceStats::kMaxLoopProfileDepth)
            nest.push_back({rec.target, rec.pc});
        const auto depth = static_cast<unsigned>(nest.size());
        ++stats.loopDepth[depth == 0 ? 1u : depth];
    }
}

TraceStats
TraceStatsBuilder::finish() const
{
    TraceStats out = stats;
    out.staticBranches = staticPcs.size();
    out.staticConditionals = staticCondPcs.size();
    if (out.conditionals > 0) {
        double weighted = 0.0;
        for (const auto &[pc, tally] : condTally) {
            const double p = static_cast<double>(tally.taken) /
                             static_cast<double>(tally.count);
            weighted += static_cast<double>(tally.count) * binaryEntropy(p);
        }
        out.conditionalEntropy =
            weighted / static_cast<double>(out.conditionals);
    }
    return out;
}

TraceStats
computeStats(const Trace &trace)
{
    TraceStatsBuilder builder;
    for (const BranchRecord &rec : trace.branches())
        builder.add(rec);
    return builder.finish();
}

} // namespace imli
