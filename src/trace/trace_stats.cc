#include "src/trace/trace_stats.hh"

#include <set>
#include <sstream>

namespace imli
{

double
TraceStats::takenRate() const
{
    return conditionals == 0
               ? 0.0
               : static_cast<double>(takenConditionals) /
                     static_cast<double>(conditionals);
}

double
TraceStats::instsPerBranch() const
{
    return records == 0 ? 0.0
                        : static_cast<double>(instructions) /
                              static_cast<double>(records);
}

std::string
TraceStats::toString() const
{
    std::ostringstream os;
    os << "  records:              " << records << '\n'
       << "  instructions:         " << instructions << '\n'
       << "  conditionals:         " << conditionals << '\n'
       << "  taken rate:           " << takenRate() << '\n'
       << "  backward conditional: " << backwardConditionals << '\n'
       << "  static branches:      " << staticBranches << '\n'
       << "  static conditionals:  " << staticConditionals << '\n'
       << "  insts/branch:         " << instsPerBranch() << '\n';
    for (const auto &[type, count] : perType)
        os << "  type " << branchTypeName(type) << ": " << count << '\n';
    return os.str();
}

TraceStats
computeStats(const Trace &trace)
{
    TraceStats stats;
    std::set<std::uint64_t> static_pcs;
    std::set<std::uint64_t> static_cond_pcs;

    stats.records = trace.size();
    stats.instructions = trace.instructionCount();
    for (const BranchRecord &rec : trace.branches()) {
        ++stats.perType[rec.type];
        static_pcs.insert(rec.pc);
        if (isConditional(rec.type)) {
            ++stats.conditionals;
            static_cond_pcs.insert(rec.pc);
            if (rec.taken)
                ++stats.takenConditionals;
            if (rec.isBackward())
                ++stats.backwardConditionals;
        }
    }
    stats.staticBranches = static_pcs.size();
    stats.staticConditionals = static_cond_pcs.size();
    return stats;
}

} // namespace imli
