/**
 * @file
 * Chrome trace-event JSON export for the pipeline engine.
 *
 * Emits the "JSON Array Format" understood by Perfetto / chrome://tracing:
 * a top-level array of complete ("ph":"X") events, each with a name,
 * a timestamp, a duration, and free-form args.  Timestamps are VIRTUAL:
 * a monotonic per-writer counter, one tick per event, so the output is
 * deterministic run to run — the point is event ORDER and structure
 * (fetch/predict/commit/squash/restore interleaving), not wall time.
 *
 * Off by default like the rest of src/obs: the pipeline only emits
 * through a nullable pointer held in SimOptions.  Trace files grow with
 * the trace length, so suite_report restricts --trace-events to a
 * single (benchmark, config) cell.
 */

#ifndef IMLI_SRC_OBS_TRACE_EVENT_HH
#define IMLI_SRC_OBS_TRACE_EVENT_HH

#include <cstdint>
#include <ostream>
#include <string>

namespace imli
{
namespace obs
{

/**
 * Streams a valid trace-event JSON array to @p os.  Events appear in
 * emission order; close() (or destruction) terminates the array.
 */
class TraceEventWriter
{
  public:
    explicit TraceEventWriter(std::ostream &os) : os_(os) { os_ << "[\n"; }
    ~TraceEventWriter() { close(); }

    TraceEventWriter(const TraceEventWriter &) = delete;
    TraceEventWriter &operator=(const TraceEventWriter &) = delete;

    /**
     * One complete event.  @p name is the span name ("fetch", "commit",
     * ...); @p args is either empty or a pre-rendered JSON object body
     * (the caller formats `"pc": 4096, "taken": true` style pairs —
     * keys in fixed order for byte stability).
     */
    void emit(const std::string &name, const std::string &args);

    /** Number of events emitted so far. */
    std::uint64_t events() const { return events_; }

    /** Terminate the JSON array; idempotent. */
    void close()
    {
        if (closed_)
            return;
        closed_ = true;
        os_ << "\n]\n";
    }

  private:
    std::ostream &os_;
    std::uint64_t ts_ = 0;
    std::uint64_t events_ = 0;
    bool closed_ = false;
};

} // namespace obs
} // namespace imli

#endif // IMLI_SRC_OBS_TRACE_EVENT_HH
