#include "src/obs/phase_series.hh"

#include <ostream>
#include <set>

#include "src/obs/metrics.hh"
#include "src/util/table_writer.hh"

namespace imli
{
namespace obs
{

PhaseRecorder::PhaseRecorder(std::uint64_t interval,
                             const MetricsScope *scope)
    : interval_(interval == 0 ? 1 : interval), scope_(scope)
{
    snapshot(baseline_);
}

void
PhaseRecorder::snapshot(std::map<std::string, std::uint64_t> &out) const
{
    out.clear();
    if (scope_ != nullptr)
        out = scope_->counters();
}

void
PhaseRecorder::closeWindow()
{
    if (scope_ != nullptr) {
        std::map<std::string, std::uint64_t> now;
        snapshot(now);
        for (const auto &[name, value] : now) {
            const auto base = baseline_.find(name);
            const std::uint64_t before =
                base == baseline_.end() ? 0 : base->second;
            current_.counterDeltas[name] = value - before;
        }
        baseline_ = std::move(now);
    }
    windows_.push_back(std::move(current_));
    current_ = PhaseWindow();
}

void
PhaseRecorder::onRecord(bool conditional, bool mispredicted,
                        std::uint64_t instructions)
{
    current_.instructions += instructions;
    if (!conditional)
        return;
    ++current_.branches;
    if (mispredicted)
        ++current_.mispredictions;
    if (current_.branches >= interval_)
        closeWindow();
}

void
PhaseRecorder::finish()
{
    if (current_.branches > 0 || current_.instructions > 0)
        closeWindow();
}

void
PhaseRecorder::writeJson(std::ostream &os, const std::string &indent) const
{
    os << '[';
    for (std::size_t w = 0; w < windows_.size(); ++w) {
        const PhaseWindow &win = windows_[w];
        os << (w > 0 ? "," : "") << '\n'
           << indent << "  {\"window\": " << w
           << ", \"branches\": " << win.branches
           << ", \"mispredictions\": " << win.mispredictions
           << ", \"instructions\": " << win.instructions
           << ", \"mpki\": " << formatDouble(win.mpki(), 3)
           << ", \"accuracy\": " << formatDouble(win.accuracy(), 4)
           << ", \"counter_deltas\": {";
        bool first = true;
        for (const auto &[name, delta] : win.counterDeltas) {
            os << (first ? "" : ", ") << '"' << jsonEscape(name)
               << "\": " << delta;
            first = false;
        }
        os << "}}";
    }
    if (!windows_.empty())
        os << '\n' << indent;
    os << ']';
}

void
PhaseRecorder::writeCsv(std::ostream &os) const
{
    std::set<std::string> names;
    for (const PhaseWindow &win : windows_)
        for (const auto &[name, delta] : win.counterDeltas) {
            (void)delta;
            names.insert(name);
        }
    os << "window,branches,mispredictions,instructions,mpki,accuracy";
    for (const std::string &name : names)
        os << ",delta:" << name;
    os << '\n';
    for (std::size_t w = 0; w < windows_.size(); ++w) {
        const PhaseWindow &win = windows_[w];
        os << w << ',' << win.branches << ',' << win.mispredictions << ','
           << win.instructions << ',' << formatDouble(win.mpki(), 3) << ','
           << formatDouble(win.accuracy(), 4);
        for (const std::string &name : names) {
            const auto it = win.counterDeltas.find(name);
            os << ','
               << (it == win.counterDeltas.end() ? 0 : it->second);
        }
        os << '\n';
    }
}

} // namespace obs
} // namespace imli
