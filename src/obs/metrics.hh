/**
 * @file
 * Zero-overhead metrics registry: named counters / histograms / gauges
 * with per-predictor scoping, behind nullable Probe handles.
 *
 * Discipline (the same one PR 7 established for sim.prefetch): the
 * instrumentation is OFF by default, provably inert when off, and never
 * enters a journal fingerprint.  Three layers:
 *
 *  - Probe handles (ProbeCounter / ProbeHistogram): the only thing that
 *    lives on a hot path.  A probe is a single nullable pointer into a
 *    MetricsScope; unattached (the default) it compiles to one
 *    predictable never-taken branch, so a binary with probes compiled
 *    in but disabled is byte-identical in results and inside the
 *    existing perf-floor margin in throughput (both pinned by CI).
 *  - MetricsScope: one predictor's (or one (benchmark, config) cell's)
 *    named metric set.  Node-based std::map storage means a resolved
 *    probe pointer stays valid for the scope's lifetime even if the
 *    owning container moves, and iteration order is sorted — the
 *    byte-stable JSON key order for free.  Probes are resolved ONCE at
 *    attach time (ConditionalPredictor::attachProbes); no string lookup
 *    ever happens per branch.
 *  - MetricsRegistry: fixed per-(benchmark, config) cell slots,
 *    paralleling the suite runner's benchmark-major cell matrix.  Each
 *    worker writes only its own slots, so collection is lock-free and
 *    the merged export order is deterministic whatever the worker
 *    count — the "per-thread shards merged deterministically" model.
 *
 * Schema stability note: the JSON document written by
 * MetricsRegistry::writeJson is versioned via the top-level "schema"
 * key (currently "imli-metrics-1").  Within a schema version, key order
 * is fixed (object keys sorted, cells in slot order) and number
 * formatting is stable, so consumers may diff documents byte for byte.
 * Adding metric NAMES is backward-compatible; renaming or removing
 * names, or changing the document shape, requires a schema bump.
 */

#ifndef IMLI_SRC_OBS_METRICS_HH
#define IMLI_SRC_OBS_METRICS_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace imli
{
namespace obs
{

class PhaseRecorder;

/**
 * Bucketed value distribution.  Linear histograms map value v to bucket
 * min(v, buckets-1) (the last bucket is the overflow clamp); Log2
 * histograms map v to bucket min(floor(log2(v+1)), buckets-1), so small
 * values keep resolution while large ones fold geometrically.
 */
class Histogram
{
  public:
    enum class Kind
    {
        Linear,
        Log2,
    };

    Histogram() = default;
    Histogram(Kind kind, std::size_t buckets)
        : kind_(kind), counts_(buckets, 0)
    {
    }

    void record(std::uint64_t value)
    {
        if (counts_.empty())
            return;
        std::size_t b;
        if (kind_ == Kind::Linear) {
            b = static_cast<std::size_t>(value);
        } else {
            b = 0;
            std::uint64_t v = value + 1;
            while (v > 1) {
                v >>= 1;
                ++b;
            }
        }
        if (b >= counts_.size())
            b = counts_.size() - 1;
        ++counts_[b];
    }

    Kind kind() const { return kind_; }
    const std::vector<std::uint64_t> &buckets() const { return counts_; }

    /** Sum of all bucket counts (number of recorded samples). */
    std::uint64_t total() const
    {
        std::uint64_t t = 0;
        for (std::uint64_t c : counts_)
            t += c;
        return t;
    }

  private:
    Kind kind_ = Kind::Linear;
    std::vector<std::uint64_t> counts_;
};

/**
 * Nullable counter handle.  Default-constructed it is detached: hit()
 * is one predictable branch and nothing else — the no-op-sized shape
 * the inertness pin relies on.  Attached, it increments the scope's
 * counter slot directly (no lookup, no indirection beyond one pointer).
 */
struct ProbeCounter
{
    std::uint64_t *slot = nullptr;

    void hit()
    {
        if (slot != nullptr)
            ++*slot;
    }

    void add(std::uint64_t n)
    {
        if (slot != nullptr)
            *slot += n;
    }

    bool attached() const { return slot != nullptr; }
};

/** Nullable histogram handle; same inertness shape as ProbeCounter. */
struct ProbeHistogram
{
    Histogram *sink = nullptr;

    void record(std::uint64_t value)
    {
        if (sink != nullptr)
            sink->record(value);
    }

    bool attached() const { return sink != nullptr; }
};

/**
 * One named metric set.  counter()/histogram() register (or re-find) a
 * metric and hand back a stable pointer for a Probe; registration is an
 * attach-time operation, never a hot-path one.  The current name
 * prefix (pushPrefix/popPrefix) scopes sub-predictor metrics — the
 * meta-chooser attaches each arm under "subN/".
 */
class MetricsScope
{
  public:
    /** Register (or find) the counter @p name; returns its slot. */
    std::uint64_t *counter(const std::string &name);

    /** Register (or find) the histogram @p name.  The kind and bucket
     *  count of the first registration win; a re-registration with a
     *  different shape throws std::invalid_argument. */
    Histogram *histogram(const std::string &name, Histogram::Kind kind,
                         std::size_t buckets);

    /** Set the gauge @p name (last write wins). */
    void setGauge(const std::string &name, double value);

    /** Enter a sub-predictor name scope: subsequent registrations are
     *  prefixed until the matching popPrefix(). */
    void pushPrefix(const std::string &prefix);
    void popPrefix();

    bool empty() const
    {
        return counters_.empty() && histograms_.empty() && gauges_.empty();
    }

    const std::map<std::string, std::uint64_t> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, Histogram> &histograms() const
    {
        return histograms_;
    }
    const std::map<std::string, double> &gauges() const { return gauges_; }

    /** Counter value by full name (0 when absent) — test convenience. */
    std::uint64_t counterValue(const std::string &name) const;

    /**
     * Byte-stable JSON object body for this scope: "counters",
     * "histograms", "gauges" keys with sorted member names.  @p indent
     * is the leading whitespace of the object's own lines.
     */
    void writeJson(std::ostream &os, const std::string &indent) const;

  private:
    std::string qualify(const std::string &name) const;

    // Node-based maps: mapped-value addresses survive container moves,
    // which is what lets CellObs vectors hold scopes by value while
    // probes keep raw pointers into them.
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, Histogram> histograms_;
    std::map<std::string, double> gauges_;
    std::vector<std::string> prefixes_;
};

/**
 * Per-cell observation state: the metric scope plus the optional phase
 * recorder, tagged with the cell identity and its wall time.  Owned by
 * a MetricsRegistry slot; filled by exactly one worker.
 */
struct CellObs
{
    std::string benchmark;
    std::string config;
    double wallSeconds = 0.0;
    MetricsScope scope;
    std::unique_ptr<PhaseRecorder> phase;

    CellObs();
    CellObs(CellObs &&) noexcept;
    CellObs &operator=(CellObs &&) noexcept;
    ~CellObs();
};

/**
 * The run-level collection point: fixed cell slots (resize once, before
 * any worker starts) plus run-level gauges.  Slot order is the export
 * order, so the JSON is deterministic for any worker count.
 */
class MetricsRegistry
{
  public:
    /** Phase-series window in branches; 0 disables phase recording. */
    std::uint64_t phaseInterval = 0;

    /** Size the cell slots; call once, before the fan-out. */
    void resize(std::size_t cells) { cells_.resize(cells); }

    std::size_t size() const { return cells_.size(); }
    CellObs &cell(std::size_t i) { return cells_[i]; }
    const CellObs &cell(std::size_t i) const { return cells_[i]; }

    /** Run-level gauge (e.g. thread-pool queue high-water). */
    void setGauge(const std::string &name, double value);

    /**
     * The full metrics document (see the schema note in the file
     * header): schema tag, phase interval, run gauges, then one entry
     * per non-empty cell slot, in slot order.
     */
    void writeJson(std::ostream &os) const;

  private:
    std::vector<CellObs> cells_;
    std::map<std::string, double> gauges_;
};

} // namespace obs
} // namespace imli

#endif // IMLI_SRC_OBS_METRICS_HH
