#include "src/obs/trace_event.hh"

#include "src/util/table_writer.hh"

namespace imli
{
namespace obs
{

void
TraceEventWriter::emit(const std::string &name, const std::string &args)
{
    if (closed_)
        return;
    if (events_ > 0)
        os_ << ",\n";
    os_ << "{\"name\": \"" << jsonEscape(name)
        << "\", \"ph\": \"X\", \"ts\": " << ts_
        << ", \"dur\": 1, \"pid\": 0, \"tid\": 0, \"args\": {" << args
        << "}}";
    ++ts_;
    ++events_;
}

} // namespace obs
} // namespace imli
