#include "src/obs/metrics.hh"

#include <ostream>
#include <stdexcept>

#include "src/obs/phase_series.hh"
#include "src/util/table_writer.hh"

namespace imli
{
namespace obs
{

std::string
MetricsScope::qualify(const std::string &name) const
{
    if (prefixes_.empty())
        return name;
    std::string full;
    for (const std::string &p : prefixes_)
        full += p;
    full += name;
    return full;
}

std::uint64_t *
MetricsScope::counter(const std::string &name)
{
    return &counters_[qualify(name)];
}

Histogram *
MetricsScope::histogram(const std::string &name, Histogram::Kind kind,
                        std::size_t buckets)
{
    const std::string full = qualify(name);
    auto it = histograms_.find(full);
    if (it == histograms_.end()) {
        it = histograms_.emplace(full, Histogram(kind, buckets)).first;
    } else if (it->second.kind() != kind ||
               it->second.buckets().size() != buckets) {
        throw std::invalid_argument(
            "metrics: histogram \"" + full +
            "\" re-registered with a different shape");
    }
    return &it->second;
}

void
MetricsScope::setGauge(const std::string &name, double value)
{
    gauges_[qualify(name)] = value;
}

void
MetricsScope::pushPrefix(const std::string &prefix)
{
    prefixes_.push_back(prefix);
}

void
MetricsScope::popPrefix()
{
    if (prefixes_.empty())
        throw std::logic_error("metrics: popPrefix without pushPrefix");
    prefixes_.pop_back();
}

std::uint64_t
MetricsScope::counterValue(const std::string &name) const
{
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

void
MetricsScope::writeJson(std::ostream &os, const std::string &indent) const
{
    os << indent << "\"counters\": {";
    bool first = true;
    for (const auto &[name, value] : counters_) {
        os << (first ? "" : ", ") << '"' << jsonEscape(name)
           << "\": " << value;
        first = false;
    }
    os << "},\n" << indent << "\"histograms\": {";
    first = true;
    for (const auto &[name, hist] : histograms_) {
        os << (first ? "" : ", ") << '"' << jsonEscape(name)
           << "\": {\"kind\": \""
           << (hist.kind() == Histogram::Kind::Linear ? "linear" : "log2")
           << "\", \"buckets\": [";
        for (std::size_t b = 0; b < hist.buckets().size(); ++b)
            os << (b > 0 ? ", " : "") << hist.buckets()[b];
        os << "]}";
        first = false;
    }
    os << "},\n" << indent << "\"gauges\": {";
    first = true;
    for (const auto &[name, value] : gauges_) {
        os << (first ? "" : ", ") << '"' << jsonEscape(name)
           << "\": " << formatDouble(value, 4);
        first = false;
    }
    os << '}';
}

CellObs::CellObs() = default;
CellObs::CellObs(CellObs &&) noexcept = default;
CellObs &CellObs::operator=(CellObs &&) noexcept = default;
CellObs::~CellObs() = default;

void
MetricsRegistry::setGauge(const std::string &name, double value)
{
    gauges_[name] = value;
}

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    os << "{\n  \"schema\": \"imli-metrics-1\",\n  \"phase_interval\": "
       << phaseInterval << ",\n  \"gauges\": {";
    bool first = true;
    for (const auto &[name, value] : gauges_) {
        os << (first ? "" : ", ") << '"' << jsonEscape(name)
           << "\": " << formatDouble(value, 4);
        first = false;
    }
    os << "},\n  \"cells\": [\n";
    bool firstCell = true;
    for (const CellObs &cell : cells_) {
        // A slot left empty (resumed sweep cell, benchmark that never
        // ran) is skipped, keeping the document to what was observed.
        if (cell.benchmark.empty() && cell.scope.empty())
            continue;
        if (!firstCell)
            os << ",\n";
        firstCell = false;
        os << "    {\n      \"benchmark\": \"" << jsonEscape(cell.benchmark)
           << "\",\n      \"config\": \"" << jsonEscape(cell.config)
           << "\",\n      \"wall_seconds\": "
           << formatDouble(cell.wallSeconds, 3) << ",\n";
        cell.scope.writeJson(os, "      ");
        os << ",\n      \"phases\": ";
        if (cell.phase != nullptr)
            cell.phase->writeJson(os, "      ");
        else
            os << "[]";
        os << "\n    }";
    }
    os << "\n  ]\n}\n";
}

} // namespace obs
} // namespace imli
