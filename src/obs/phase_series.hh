/**
 * @file
 * Phase-sliced time series: windowed MPKI / accuracy / provider-mix
 * every N branches, per (benchmark, config) cell.
 *
 * A PhaseRecorder is fed from the simulator's grading loop (one call
 * per committed record) and closes a window each time the configured
 * number of conditional branches has been graded.  At window close it
 * snapshots the attached MetricsScope's counters and stores the deltas,
 * so the provider mix (or any other probe) is available per phase
 * without any extra hot-path work beyond what the probes already do.
 *
 * Like everything in src/obs, this is off by default: the simulator
 * only calls onRecord() through a nullable pointer held in SimOptions.
 */

#ifndef IMLI_SRC_OBS_PHASE_SERIES_HH
#define IMLI_SRC_OBS_PHASE_SERIES_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace imli
{
namespace obs
{

class MetricsScope;

/** One closed phase window. */
struct PhaseWindow
{
    std::uint64_t branches = 0;       ///< graded conditional branches
    std::uint64_t mispredictions = 0; ///< mispredicted conditionals
    std::uint64_t instructions = 0;   ///< instructions covered
    /// Delta of every scope counter over this window (sorted by name).
    std::map<std::string, std::uint64_t> counterDeltas;

    double mpki() const
    {
        return instructions == 0
                   ? 0.0
                   : 1000.0 * static_cast<double>(mispredictions) /
                         static_cast<double>(instructions);
    }

    double accuracy() const
    {
        return branches == 0
                   ? 0.0
                   : 1.0 - static_cast<double>(mispredictions) /
                               static_cast<double>(branches);
    }
};

/**
 * Accumulates grading events into fixed-width windows of @p interval
 * conditional branches.  @p scope may be null (no counter deltas are
 * recorded then); when set, it must outlive the recorder.
 */
class PhaseRecorder
{
  public:
    PhaseRecorder(std::uint64_t interval, const MetricsScope *scope);

    /**
     * One committed record.  @p conditional says whether the record was
     * a graded conditional branch, @p mispredicted whether it was
     * mispredicted (only meaningful when @p conditional), and
     * @p instructions how many instructions the record accounts for.
     */
    void onRecord(bool conditional, bool mispredicted,
                  std::uint64_t instructions);

    /** Close the final partial window (no-op when it is empty). */
    void finish();

    std::uint64_t interval() const { return interval_; }
    const std::vector<PhaseWindow> &windows() const { return windows_; }

    /** Byte-stable JSON array of windows; @p indent as in MetricsScope. */
    void writeJson(std::ostream &os, const std::string &indent) const;

    /**
     * CSV export: header
     * `window,branches,mispredictions,instructions,mpki,accuracy` plus
     * one `delta:<name>` column per counter seen in any window.
     */
    void writeCsv(std::ostream &os) const;

  private:
    void closeWindow();
    void snapshot(std::map<std::string, std::uint64_t> &out) const;

    std::uint64_t interval_;
    const MetricsScope *scope_;
    std::vector<PhaseWindow> windows_;
    PhaseWindow current_;
    std::map<std::string, std::uint64_t> baseline_;
};

} // namespace obs
} // namespace imli

#endif // IMLI_SRC_OBS_PHASE_SERIES_HH
