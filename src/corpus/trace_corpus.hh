/**
 * @file
 * TraceCorpus: one owner for trace discovery, decoding and metadata.
 *
 * Architecture.  The corpus layer sits between the workload layer
 * (BenchmarkSpec: *what* a benchmark is) and every consumer that needs
 * its branch stream (suite runner, DSE sweep, report/bench CLIs,
 * trace_tools).  Before this layer each binary re-implemented the same
 * three jobs; they now live here, once:
 *
 *  1. Discovery — building the benchmark pool.  makeSuiteCorpus() is
 *     the canonical "80 generated members plus the REC-01..08 recorded
 *     scenarios from --recorded DIR" pool with a single, shared error
 *     message for a missing or invalid directory;
 *     TraceCorpus::fromDirectory() ingests an external directory of
 *     `.cbp` / `.imt` traces.  selectSuiteBenchmarks() layers the
 *     existing glob/suite selection plus characterization-class
 *     stratification (--class) on top.
 *
 *  2. Decoding — TraceCorpus::open() is the one factory for a
 *     benchmark's BranchSource.  Recorded traces are decoded at most
 *     once per process: the decoded Trace goes into a process-wide,
 *     size-capped cache and subsequent opens serve zero-copy spans from
 *     the shared in-memory copy (oversized traces fall back to the
 *     streaming file readers).  The record sequence is identical either
 *     way, so simulation results do not depend on cache state — only
 *     decode time does.
 *
 *  3. Characterization — per-trace predictability metadata (taken rate,
 *     per-PC direction entropy, loop-nesting profile; see
 *     characterize.hh), content-fingerprinted, cached in memory per
 *     corpus and optionally persisted to a cache directory so repeated
 *     report runs skip the characterization pass.
 *
 * The DSE shard/plan/merge layer (src/dse/sweep.hh) builds on (2): every
 * shard process opens its streams through the same corpus factory, and
 * the sweep journal's trace fingerprints come from the same bytes the
 * corpus decodes.
 */

#ifndef IMLI_SRC_CORPUS_TRACE_CORPUS_HH
#define IMLI_SRC_CORPUS_TRACE_CORPUS_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/corpus/characterize.hh"
#include "src/trace/branch_source.hh"
#include "src/workloads/benchmark_spec.hh"

namespace imli
{

/** A named set of benchmarks with per-trace characterization metadata. */
class TraceCorpus
{
  public:
    TraceCorpus() = default;
    explicit TraceCorpus(std::vector<BenchmarkSpec> specs);

    /** Append one benchmark; throws std::invalid_argument on a
     *  duplicate name (names are the corpus key). */
    void add(BenchmarkSpec spec);

    /** Append a whole suite (same duplicate rule). */
    void add(std::vector<BenchmarkSpec> specs);

    /** The members, in insertion order. */
    const std::vector<BenchmarkSpec> &benchmarks() const { return specs; }

    bool contains(const std::string &name) const;

    /** Member by name; throws std::out_of_range when absent. */
    const BenchmarkSpec &find(const std::string &name) const;

    /**
     * Persist characterizations under @p dir ("<name>-<fp>.char", one
     * serialize()d line each); "" disables persistence.  The directory
     * is created on first write.
     */
    void setCharacterizationCacheDir(const std::string &dir);

    /**
     * The characterization of member @p name at @p target_branches
     * (the budget only affects Generated members; recorded traces are
     * always characterized whole).  Computed on first use, then served
     * from the in-memory cache; with a cache directory set, persisted
     * records are reused across processes, keyed by the trace's content
     * fingerprint so stale records are recomputed, not trusted.
     */
    const TraceCharacterization &
    characterize(const std::string &name, std::size_t target_branches,
                 std::size_t chunk_records =
                     BranchSource::defaultChunkRecords);

    /**
     * Members of predictability class @p class_name (corpus order),
     * characterizing members on demand.  Throws on an unknown class
     * (see matchesClass).
     */
    std::vector<BenchmarkSpec>
    selectClass(const std::string &class_name, std::size_t target_branches,
                std::size_t chunk_records =
                    BranchSource::defaultChunkRecords);

    /**
     * Content fingerprint of @p spec's stream: FNV-1a over the trace
     * file's bytes for recorded specs; over the seed, budget and a
     * prefix of the generated record stream for Generated specs (their
     * stream is a pure function of (spec, target), so a prefix plus the
     * parameters identifies it cheaply).
     */
    static std::uint64_t fingerprint(const BenchmarkSpec &spec,
                                     std::size_t target_branches);

    /**
     * Open @p spec's branch stream.  Generated specs stream from the
     * kernel generator exactly as makeBranchSource(); recorded specs
     * are served from the process-wide decoded-trace cache when the
     * trace fits (decode once, then zero-copy spans), falling back to
     * the streaming file readers when it does not.  Identical record
     * sequence either way.
     */
    static std::unique_ptr<BranchSource>
    open(const BenchmarkSpec &spec, std::size_t target_branches,
         std::size_t chunk_records = BranchSource::defaultChunkRecords);

    /** Observability for the process-wide decoded-trace cache. */
    struct StreamCacheStats
    {
        std::size_t entries = 0;   //!< decoded traces resident
        std::size_t bytes = 0;     //!< approximate resident record bytes
        std::uint64_t hits = 0;    //!< opens served from the cache
        std::uint64_t misses = 0;  //!< opens that had to decode / stream
    };
    static StreamCacheStats streamCacheStats();

    /** Drop every cached decoded trace (tests; live sources keep
     *  their shared copies alive). */
    static void clearStreamCache();

    /**
     * Discover recorded benchmarks in @p dir: every regular "*.cbp" /
     * "*.imt" file becomes a recorded spec named after its stem, suite
     * @p suite, sorted by file name.  Throws std::runtime_error when
     * @p dir is not a directory.
     */
    static std::vector<BenchmarkSpec>
    fromDirectory(const std::string &dir, const std::string &suite = "EXT");

  private:
    struct CharEntry
    {
        std::uint64_t fingerprint = 0;
        TraceCharacterization record;
    };

    const BenchmarkSpec *lookup(const std::string &name) const;

    std::vector<BenchmarkSpec> specs;
    std::string cacheDir;
    /** name + "@" + effective budget -> characterization. */
    std::map<std::string, CharEntry> charCache;
};

/**
 * The canonical experiment pool: the 80 generated suite members, plus
 * the REC-01..REC-08 recorded scenarios when @p recorded_dir is
 * non-empty.  The recorded directory is validated up front (must be a
 * directory containing every rec-0N.cbp) with one shared error message,
 * so every CLI reports a bad --recorded DIR identically.
 */
TraceCorpus makeSuiteCorpus(const std::string &recorded_dir);

/** Selection request shared by the suite CLIs (suite_report, explorer,
 *  bench mains). */
struct CorpusQuery
{
    std::string recordedDir;  //!< "" = generated members only
    std::string suite;        //!< "" or exact suite filter (e.g. "CBP4")
    std::vector<std::string> patterns;  //!< glob selection, may be empty
    std::string className;    //!< "" or a knownClasses() name
    std::string characterizationCacheDir;  //!< "" = in-memory only
    std::size_t targetBranches = 200000;   //!< class-characterization budget
    std::size_t chunkBranches = BranchSource::defaultChunkRecords;
};

/**
 * The shared CLI selection path: build the suite corpus, filter by
 * suite, select by globs (near-miss suggestions preserved), then
 * stratify by class.  Throws std::runtime_error on any selection
 * problem — unknown pattern/class, invalid recorded dir, or an empty
 * result ("no benchmarks selected" + the shared recordedHint when the
 * request mentioned REC content without --recorded).
 */
std::vector<BenchmarkSpec> selectSuiteBenchmarks(const CorpusQuery &query);

} // namespace imli

#endif // IMLI_SRC_CORPUS_TRACE_CORPUS_HH
