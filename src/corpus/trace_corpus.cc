#include "src/corpus/trace_corpus.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "src/trace/cbp_reader.hh"
#include "src/trace/trace_io.hh"
#include "src/workloads/suite.hh"

namespace imli
{

namespace
{

/** Total record bytes the process-wide decoded-trace cache may hold. */
constexpr std::size_t kStreamCacheCapBytes = 256u << 20;

/** Generated-stream records mixed into the content fingerprint. */
constexpr std::size_t kFingerprintRecords = 4096;

/** Chunked spans over a cache-owned Trace; the shared_ptr keeps the
 *  decoded copy alive for as long as any source still streams it. */
class SharedTraceBranchSource : public BranchSource
{
  public:
    SharedTraceBranchSource(std::shared_ptr<const Trace> trace,
                            std::string name, std::size_t chunk_records)
        : trace(std::move(trace)), streamName(std::move(name)),
          chunkRecords(chunk_records == 0 ? defaultChunkRecords
                                          : chunk_records)
    {
    }

    const std::string &name() const override { return streamName; }

    BranchSpan nextChunk() override
    {
        const auto &records = trace->branches();
        if (cursor >= records.size())
            return {};
        const std::size_t count =
            std::min(chunkRecords, records.size() - cursor);
        BranchSpan span{records.data() + cursor, count};
        cursor += count;
        return span;
    }

    void reset() override { cursor = 0; }

  private:
    std::shared_ptr<const Trace> trace;
    std::string streamName;
    std::size_t chunkRecords;
    std::size_t cursor = 0;
};

/** The process-wide decoded-trace cache behind TraceCorpus::open(). */
struct StreamCache
{
    std::mutex mutex;
    std::map<std::string, std::shared_ptr<const Trace>> traces;
    std::size_t bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
};

StreamCache &
streamCache()
{
    static StreamCache cache;
    return cache;
}

std::size_t
traceBytes(const Trace &trace)
{
    return trace.size() * sizeof(BranchRecord);
}

/** Decoded size estimate without reading the body, in record bytes. */
std::size_t
estimateDecodedBytes(const BenchmarkSpec &spec)
{
    if (spec.backend == TraceBackend::RecordedImt) {
        FileBranchSource probe(spec.tracePath, 1, spec.name);
        return static_cast<std::size_t>(probe.totalRecords()) *
               sizeof(BranchRecord);
    }
    // CBP: fixed 22-byte records after the 8-byte header, to EOF.
    std::error_code ec;
    const auto fileSize =
        std::filesystem::file_size(spec.tracePath, ec);
    if (ec)
        throw std::runtime_error("cannot stat recorded trace for " +
                                 spec.name + ": " + spec.tracePath);
    const std::uint64_t records = fileSize <= 8 ? 0 : (fileSize - 8) / 22;
    return static_cast<std::size_t>(records) * sizeof(BranchRecord);
}

struct Fnv1a
{
    std::uint64_t hash = 1469598103934665603ull;

    void mix(const void *data, std::size_t size)
    {
        const auto *bytes = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < size; ++i) {
            hash ^= bytes[i];
            hash *= 1099511628211ull;
        }
    }

    void mixU64(std::uint64_t v)
    {
        unsigned char bytes[8];
        for (int i = 0; i < 8; ++i)
            bytes[i] = static_cast<unsigned char>(v >> (8 * i));
        mix(bytes, sizeof(bytes));
    }
};

std::string
hexU64(std::uint64_t v)
{
    std::ostringstream os;
    os << std::hex << v;
    return os.str();
}

} // anonymous namespace

TraceCorpus::TraceCorpus(std::vector<BenchmarkSpec> specs)
{
    add(std::move(specs));
}

void
TraceCorpus::add(BenchmarkSpec spec)
{
    if (contains(spec.name))
        throw std::invalid_argument("TraceCorpus: duplicate benchmark \"" +
                                    spec.name + "\"");
    specs.push_back(std::move(spec));
}

void
TraceCorpus::add(std::vector<BenchmarkSpec> more)
{
    for (BenchmarkSpec &spec : more)
        add(std::move(spec));
}

bool
TraceCorpus::contains(const std::string &name) const
{
    return lookup(name) != nullptr;
}

const BenchmarkSpec &
TraceCorpus::find(const std::string &name) const
{
    const BenchmarkSpec *spec = lookup(name);
    if (spec == nullptr)
        throw std::out_of_range("TraceCorpus: no benchmark \"" + name +
                                "\"");
    return *spec;
}

const BenchmarkSpec *
TraceCorpus::lookup(const std::string &name) const
{
    for (const BenchmarkSpec &spec : specs)
        if (spec.name == name)
            return &spec;
    return nullptr;
}

void
TraceCorpus::setCharacterizationCacheDir(const std::string &dir)
{
    cacheDir = dir;
}

const TraceCharacterization &
TraceCorpus::characterize(const std::string &name,
                          std::size_t target_branches,
                          std::size_t chunk_records)
{
    const BenchmarkSpec &spec = find(name);
    // Recorded traces always play whole, so their characterization is
    // budget-independent; generated streams are a function of (spec,
    // budget) and cache per budget.
    const std::size_t budget =
        spec.backend == TraceBackend::Generated ? target_branches : 0;
    const std::string key = name + "@" + std::to_string(budget);
    const auto cached = charCache.find(key);
    if (cached != charCache.end())
        return cached->second.record;

    const std::uint64_t fp = fingerprint(spec, target_branches);
    const std::string file =
        cacheDir.empty()
            ? std::string()
            : cacheDir + "/" + name + "-" + hexU64(fp) + ".char";

    if (!file.empty()) {
        std::ifstream in(file);
        std::string line;
        if (in && std::getline(in, line)) {
            CharEntry entry{fp, TraceCharacterization::deserialize(line)};
            return charCache.emplace(key, std::move(entry))
                .first->second.record;
        }
    }

    const std::unique_ptr<BranchSource> source =
        open(spec, target_branches, chunk_records);
    CharEntry entry{fp, characterizeSource(*source)};

    if (!file.empty()) {
        std::filesystem::create_directories(cacheDir);
        std::ofstream out(file, std::ios::trunc);
        out << entry.record.serialize() << '\n';
        if (!out)
            throw std::runtime_error(
                "cannot write characterization cache file: " + file);
    }
    return charCache.emplace(key, std::move(entry)).first->second.record;
}

std::vector<BenchmarkSpec>
TraceCorpus::selectClass(const std::string &class_name,
                         std::size_t target_branches,
                         std::size_t chunk_records)
{
    // Reject an unknown class before characterizing anything (the
    // predicate call below would throw too, but only after the first
    // member had been characterized).
    bool known = false;
    for (const CorpusClass &cls : knownClasses())
        known = known || cls.name == class_name;
    if (!known)
        matchesClass(TraceCharacterization{}, class_name);  // throws

    std::vector<BenchmarkSpec> selected;
    for (const BenchmarkSpec &spec : specs)
        if (matchesClass(
                characterize(spec.name, target_branches, chunk_records),
                class_name))
            selected.push_back(spec);
    return selected;
}

std::uint64_t
TraceCorpus::fingerprint(const BenchmarkSpec &spec,
                         std::size_t target_branches)
{
    Fnv1a fnv;
    if (spec.backend != TraceBackend::Generated) {
        // Recorded: the file bytes are the content.  Chunked read so a
        // hundreds-of-MB external trace hashes in O(1) memory.
        std::ifstream in(spec.tracePath, std::ios::binary);
        if (!in)
            throw std::runtime_error(
                "cannot read recorded trace for fingerprint of " +
                spec.name + ": " + spec.tracePath);
        char chunk[65536];
        while (in.read(chunk, sizeof(chunk)) || in.gcount() > 0)
            fnv.mix(chunk, static_cast<std::size_t>(in.gcount()));
        if (in.bad())
            throw std::runtime_error(
                "read failed on recorded trace for fingerprint of " +
                spec.name + ": " + spec.tracePath);
        return fnv.hash;
    }
    // Generated: the stream is a pure function of (spec, budget), so
    // the parameters plus a record-stream prefix identify the content
    // without generating the whole trace.
    fnv.mixU64(spec.seed);
    fnv.mixU64(target_branches);
    const std::unique_ptr<BranchSource> source =
        makeBranchSource(spec, target_branches);
    std::size_t mixed = 0;
    for (BranchSpan span = source->nextChunk();
         !span.empty() && mixed < kFingerprintRecords;
         span = source->nextChunk()) {
        for (const BranchRecord &rec : span) {
            if (mixed >= kFingerprintRecords)
                break;
            fnv.mixU64(rec.pc);
            fnv.mixU64(rec.target);
            fnv.mixU64(rec.instsBefore);
            const unsigned char tail[2] = {
                static_cast<unsigned char>(rec.type),
                static_cast<unsigned char>(rec.taken ? 1 : 0)};
            fnv.mix(tail, sizeof(tail));
            ++mixed;
        }
    }
    return fnv.hash;
}

std::unique_ptr<BranchSource>
TraceCorpus::open(const BenchmarkSpec &spec, std::size_t target_branches,
                  std::size_t chunk_records)
{
    if (spec.backend == TraceBackend::Generated)
        return makeBranchSource(spec, target_branches, chunk_records);

    StreamCache &cache = streamCache();
    {
        std::lock_guard<std::mutex> lock(cache.mutex);
        const auto it = cache.traces.find(spec.tracePath);
        if (it != cache.traces.end()) {
            ++cache.hits;
            return std::make_unique<SharedTraceBranchSource>(
                it->second, spec.name, chunk_records);
        }
        ++cache.misses;
    }

    // Too big to pin in memory (or the cache is full): stream from disk.
    const std::size_t estimated = estimateDecodedBytes(spec);
    {
        std::lock_guard<std::mutex> lock(cache.mutex);
        if (cache.bytes + estimated > kStreamCacheCapBytes)
            return makeBranchSource(spec, target_branches, chunk_records);
    }

    // Decode outside the lock; a racing open of the same path decodes
    // twice and the first insertion wins (harmless, rare).
    Trace decoded = spec.backend == TraceBackend::RecordedCbp
                        ? readCbpFile(spec.tracePath, spec.name)
                        : readTraceFile(spec.tracePath);
    auto shared = std::make_shared<const Trace>(std::move(decoded));

    std::lock_guard<std::mutex> lock(cache.mutex);
    const auto it = cache.traces.find(spec.tracePath);
    if (it != cache.traces.end())
        return std::make_unique<SharedTraceBranchSource>(
            it->second, spec.name, chunk_records);
    const std::size_t actual = traceBytes(*shared);
    if (cache.bytes + actual <= kStreamCacheCapBytes) {
        cache.traces.emplace(spec.tracePath, shared);
        cache.bytes += actual;
    }
    return std::make_unique<SharedTraceBranchSource>(
        std::move(shared), spec.name, chunk_records);
}

TraceCorpus::StreamCacheStats
TraceCorpus::streamCacheStats()
{
    StreamCache &cache = streamCache();
    std::lock_guard<std::mutex> lock(cache.mutex);
    return {cache.traces.size(), cache.bytes, cache.hits, cache.misses};
}

void
TraceCorpus::clearStreamCache()
{
    StreamCache &cache = streamCache();
    std::lock_guard<std::mutex> lock(cache.mutex);
    cache.traces.clear();
    cache.bytes = 0;
    cache.hits = 0;
    cache.misses = 0;
}

std::vector<BenchmarkSpec>
TraceCorpus::fromDirectory(const std::string &dir,
                           const std::string &suite)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    if (!fs::is_directory(dir, ec))
        throw std::runtime_error("trace corpus directory \"" + dir +
                                 "\" is not a directory");
    std::vector<std::string> paths;
    for (const fs::directory_entry &entry : fs::directory_iterator(dir)) {
        if (!entry.is_regular_file())
            continue;
        const std::string path = entry.path().string();
        const std::string ext = pathExtension(path);
        if (ext == ".cbp" || ext == ".imt")
            paths.push_back(path);
    }
    std::sort(paths.begin(), paths.end());
    std::vector<BenchmarkSpec> discovered;
    discovered.reserve(paths.size());
    for (const std::string &path : paths)
        discovered.push_back(
            makeRecordedBenchmark(pathStem(path), suite, path));
    return discovered;
}

TraceCorpus
makeSuiteCorpus(const std::string &recorded_dir)
{
    TraceCorpus corpus(fullSuite());
    if (recorded_dir.empty())
        return corpus;

    // The one place the recorded directory is validated: every CLI that
    // takes --recorded DIR reports a missing or incomplete directory
    // with exactly this message.
    namespace fs = std::filesystem;
    std::error_code ec;
    if (!fs::is_directory(recorded_dir, ec))
        throw std::runtime_error(
            "--recorded: \"" + recorded_dir +
            "\" is not a directory (expected the rec-01..rec-08 scenario "
            "files; generate them with `trace_tools synth-recorded`)");
    std::vector<BenchmarkSpec> recorded = recordedSuite(recorded_dir);
    for (const BenchmarkSpec &spec : recorded)
        if (!fs::is_regular_file(spec.tracePath, ec))
            throw std::runtime_error(
                "--recorded: \"" + recorded_dir + "\" is missing " +
                spec.tracePath +
                " (generate the scenario files with `trace_tools "
                "synth-recorded`)");
    corpus.add(std::move(recorded));
    return corpus;
}

std::vector<BenchmarkSpec>
selectSuiteBenchmarks(const CorpusQuery &query)
{
    TraceCorpus corpus = makeSuiteCorpus(query.recordedDir);
    if (!query.characterizationCacheDir.empty())
        corpus.setCharacterizationCacheDir(query.characterizationCacheDir);

    // Validate a class name before any selection or characterization
    // work so typos fail fast with suggestions.
    if (!query.className.empty()) {
        bool known = false;
        for (const CorpusClass &cls : knownClasses())
            known = known || cls.name == query.className;
        if (!known)
            matchesClass(TraceCharacterization{}, query.className);
    }

    std::vector<BenchmarkSpec> pool;
    for (const BenchmarkSpec &spec : corpus.benchmarks())
        if (query.suite.empty() || spec.suite == query.suite)
            pool.push_back(spec);

    const std::string hint = recordedHint(
        !query.recordedDir.empty(), query.suite, query.patterns);

    std::vector<BenchmarkSpec> selected;
    try {
        selected = selectBenchmarks(pool, query.patterns);
    } catch (const std::runtime_error &e) {
        throw std::runtime_error(e.what() + hint);
    }

    if (!query.className.empty()) {
        std::vector<BenchmarkSpec> stratified;
        for (const BenchmarkSpec &spec : selected)
            if (matchesClass(corpus.characterize(spec.name,
                                                 query.targetBranches,
                                                 query.chunkBranches),
                             query.className))
                stratified.push_back(spec);
        selected = std::move(stratified);
    }

    if (selected.empty()) {
        std::string message = "no benchmarks selected";
        if (!query.className.empty())
            message += " (class \"" + query.className +
                       "\" matched no benchmark in the selection)";
        throw std::runtime_error(message + hint);
    }
    return selected;
}

} // namespace imli
