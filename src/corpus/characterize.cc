#include "src/corpus/characterize.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace imli
{

namespace
{

// Class thresholds, calibrated on the 88-benchmark suite at the default
// 200k-branch budget (see README "Corpus and sharded sweeps").  They are
// part of the documented CLI surface: changing one changes what
// `--class` selects, so change the README and the pinned tests with it.
constexpr double kHighEntropyBits = 0.65;
constexpr double kLowEntropyBits = 0.58;
constexpr double kLoopyShare = 0.02;
constexpr double kDeepLoopShare = 0.50;
constexpr double kFlatShare = 0.005;
constexpr double kTakenHeavyRate = 0.75;
constexpr double kBalancedLow = 0.45;
constexpr double kBalancedHigh = 0.62;

std::string
formatRate(double v)
{
    std::ostringstream os;
    os << std::setprecision(17) << v;
    return os.str();
}

/** Levenshtein distance for near-miss suggestions on unknown classes. */
std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        prev[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        cur[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t sub =
                prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
        }
        std::swap(prev, cur);
    }
    return prev[b.size()];
}

} // anonymous namespace

std::uint64_t
TraceCharacterization::loopBranches() const
{
    std::uint64_t total = 0;
    for (const auto &[depth, count] : loopDepth)
        total += count;
    return total;
}

double
TraceCharacterization::loopShare() const
{
    return conditionals == 0
               ? 0.0
               : static_cast<double>(loopBranches()) /
                     static_cast<double>(conditionals);
}

double
TraceCharacterization::deepLoopShare() const
{
    const std::uint64_t loops = loopBranches();
    if (loops == 0)
        return 0.0;
    std::uint64_t deep = 0;
    for (const auto &[depth, count] : loopDepth)
        if (depth >= 2)
            deep += count;
    return static_cast<double>(deep) / static_cast<double>(loops);
}

std::string
TraceCharacterization::serialize() const
{
    std::ostringstream os;
    os << "v1 branches=" << branches << " instructions=" << instructions
       << " conditionals=" << conditionals
       << " static_branches=" << staticBranches
       << " static_conditionals=" << staticConditionals
       << " taken_rate=" << formatRate(takenRate)
       << " entropy=" << formatRate(entropy) << " loop_depth=";
    bool first = true;
    for (const auto &[depth, count] : loopDepth) {
        if (!first)
            os << ',';
        os << depth << ':' << count;
        first = false;
    }
    if (first)
        os << '-';
    return os.str();
}

TraceCharacterization
TraceCharacterization::deserialize(const std::string &line)
{
    std::istringstream is(line);
    std::string version;
    is >> version;
    if (version != "v1")
        throw std::runtime_error(
            "characterization: unsupported version \"" + version + "\"");
    TraceCharacterization c;
    std::string token;
    bool sawLoop = false;
    while (is >> token) {
        const auto eq = token.find('=');
        if (eq == std::string::npos)
            throw std::runtime_error(
                "characterization: malformed token \"" + token + "\"");
        const std::string key = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);
        std::istringstream vs(value);
        if (key == "branches") {
            vs >> c.branches;
        } else if (key == "instructions") {
            vs >> c.instructions;
        } else if (key == "conditionals") {
            vs >> c.conditionals;
        } else if (key == "static_branches") {
            vs >> c.staticBranches;
        } else if (key == "static_conditionals") {
            vs >> c.staticConditionals;
        } else if (key == "taken_rate") {
            vs >> c.takenRate;
        } else if (key == "entropy") {
            vs >> c.entropy;
        } else if (key == "loop_depth") {
            sawLoop = true;
            if (value == "-")
                continue;
            std::istringstream ls(value);
            std::string pair;
            while (std::getline(ls, pair, ',')) {
                const auto colon = pair.find(':');
                if (colon == std::string::npos)
                    throw std::runtime_error(
                        "characterization: malformed loop_depth entry \"" +
                        pair + "\"");
                unsigned depth = 0;
                std::uint64_t count = 0;
                std::istringstream ds(pair.substr(0, colon));
                std::istringstream cs(pair.substr(colon + 1));
                if (!(ds >> depth) || !(cs >> count))
                    throw std::runtime_error(
                        "characterization: malformed loop_depth entry \"" +
                        pair + "\"");
                c.loopDepth[depth] = count;
            }
            continue;
        } else {
            throw std::runtime_error(
                "characterization: unknown key \"" + key + "\"");
        }
        if (vs.fail())
            throw std::runtime_error(
                "characterization: bad value for \"" + key + "\": " + value);
    }
    if (!sawLoop)
        throw std::runtime_error(
            "characterization: truncated record (no loop_depth): " + line);
    return c;
}

std::string
TraceCharacterization::toString() const
{
    std::ostringstream os;
    os << "  branches:            " << branches << '\n'
       << "  instructions:        " << instructions << '\n'
       << "  conditionals:        " << conditionals << '\n'
       << "  static branches:     " << staticBranches << '\n'
       << "  static conditionals: " << staticConditionals << '\n'
       << "  taken rate:          " << takenRate << '\n'
       << "  entropy (bits):      " << entropy << '\n'
       << "  loop share:          " << loopShare() << '\n'
       << "  deep-loop share:     " << deepLoopShare() << '\n';
    std::string classes;
    for (const CorpusClass &cls : knownClasses())
        if (matchesClass(*this, cls.name))
            classes += (classes.empty() ? "" : ", ") + cls.name;
    os << "  classes:             "
       << (classes.empty() ? "(none)" : classes) << '\n';
    return os.str();
}

bool
TraceCharacterization::operator==(const TraceCharacterization &other) const
{
    return branches == other.branches &&
           instructions == other.instructions &&
           conditionals == other.conditionals &&
           staticBranches == other.staticBranches &&
           staticConditionals == other.staticConditionals &&
           takenRate == other.takenRate && entropy == other.entropy &&
           loopDepth == other.loopDepth;
}

TraceCharacterization
characterizeSource(BranchSource &source)
{
    source.reset();
    TraceStatsBuilder builder;
    for (BranchSpan span = source.nextChunk(); !span.empty();
         span = source.nextChunk())
        for (const BranchRecord &rec : span)
            builder.add(rec);
    return characterizationFromStats(builder.finish());
}

TraceCharacterization
characterizationFromStats(const TraceStats &stats)
{
    TraceCharacterization c;
    c.branches = stats.records;
    c.instructions = stats.instructions;
    c.conditionals = stats.conditionals;
    c.staticBranches = stats.staticBranches;
    c.staticConditionals = stats.staticConditionals;
    c.takenRate = stats.takenRate();
    c.entropy = stats.conditionalEntropy;
    c.loopDepth = stats.loopDepth;
    return c;
}

const std::vector<CorpusClass> &
knownClasses()
{
    static const std::vector<CorpusClass> classes = {
        {"high-entropy",
         "per-PC direction entropy >= " + formatRate(kHighEntropyBits) +
             " bits (noisy, hard to predict)"},
        {"low-entropy",
         "per-PC direction entropy < " + formatRate(kLowEntropyBits) +
             " bits (strongly biased branches)"},
        {"loopy",
         "loop-closing branches >= " + formatRate(kLoopyShare) +
             " of conditionals (loop-predictor territory)"},
        {"deep-loopy",
         "loopy, and >= " + formatRate(kDeepLoopShare) +
             " of loop branches at nesting depth >= 2 (IMLI territory)"},
        {"flat",
         "loop-closing branches < " + formatRate(kFlatShare) +
             " of conditionals (little loop structure)"},
        {"taken-heavy",
         "taken rate >= " + formatRate(kTakenHeavyRate)},
        {"balanced",
         "taken rate in [" + formatRate(kBalancedLow) + ", " +
             formatRate(kBalancedHigh) + ")"},
    };
    return classes;
}

bool
matchesClass(const TraceCharacterization &c, const std::string &name)
{
    if (name == "high-entropy")
        return c.entropy >= kHighEntropyBits;
    if (name == "low-entropy")
        return c.entropy < kLowEntropyBits;
    if (name == "loopy")
        return c.loopShare() >= kLoopyShare;
    if (name == "deep-loopy")
        return c.loopShare() >= kLoopyShare &&
               c.deepLoopShare() >= kDeepLoopShare;
    if (name == "flat")
        return c.loopShare() < kFlatShare;
    if (name == "taken-heavy")
        return c.takenRate >= kTakenHeavyRate;
    if (name == "balanced")
        return c.takenRate >= kBalancedLow && c.takenRate < kBalancedHigh;

    std::string known;
    std::string nearest;
    std::size_t best = 3;  // suggest only within edit distance 2
    for (const CorpusClass &cls : knownClasses()) {
        known += (known.empty() ? "" : ", ") + cls.name;
        const std::size_t d = editDistance(name, cls.name);
        if (d < best) {
            best = d;
            nearest = cls.name;
        }
    }
    std::string msg = "unknown class \"" + name + "\"";
    if (!nearest.empty())
        msg += " (did you mean \"" + nearest + "\"?)";
    msg += "; known classes: " + known;
    throw std::runtime_error(msg);
}

} // namespace imli
