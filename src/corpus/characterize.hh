/**
 * @file
 * Per-trace workload characterization: a compact, persistable record of
 * the properties that predict branch-predictability (taken rate,
 * count-weighted per-PC direction entropy, loop-nesting profile,
 * dynamic/static branch counts), plus the named predictability classes
 * used for stratified suite selection (--class high-entropy, --class
 * loopy, ...).
 *
 * The statistics are computed by TraceStatsBuilder (src/trace/
 * trace_stats.hh), the same accumulator behind computeStats, so a
 * characterization is identical whether the stream came from the kernel
 * generator, an .imt file or a .cbp file of the same trace — by
 * construction, and pinned by tests/test_corpus.cc.
 *
 * Class membership is a set of independent predicates, not a partition:
 * a trace can be both "loopy" and "low-entropy".  Thresholds were
 * calibrated against the 88-benchmark suite at the default 200k-branch
 * budget (see README "Corpus and sharded sweeps" for the resulting
 * class sizes).
 */

#ifndef IMLI_SRC_CORPUS_CHARACTERIZE_HH
#define IMLI_SRC_CORPUS_CHARACTERIZE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/trace/branch_source.hh"
#include "src/trace/trace_stats.hh"

namespace imli
{

/** The persistable characterization record for one trace. */
struct TraceCharacterization
{
    std::uint64_t branches = 0;      //!< dynamic branch records
    std::uint64_t instructions = 0;  //!< dynamic instructions
    std::uint64_t conditionals = 0;  //!< dynamic conditional branches
    std::uint64_t staticBranches = 0;
    std::uint64_t staticConditionals = 0;
    double takenRate = 0.0;          //!< taken share of conditionals
    double entropy = 0.0;            //!< count-weighted per-PC bits
    /** Dynamic taken-backward counts per inferred loop depth (1-based). */
    std::map<unsigned, std::uint64_t> loopDepth;

    /** Dynamic loop-closing branches (sum of the loopDepth profile). */
    std::uint64_t loopBranches() const;

    /** Loop-closing share of conditionals, in [0, 1]. */
    double loopShare() const;

    /** Share of loop-closing branches at depth >= 2, in [0, 1]. */
    double deepLoopShare() const;

    /** One-line "key=value ..." form; parse back with deserialize(). */
    std::string serialize() const;

    /**
     * Parse a serialize()d line; throws std::runtime_error naming the
     * offending token on malformed input.  Round-trips exactly
     * (counters are integers, rates are printed with 17 significant
     * digits).
     */
    static TraceCharacterization deserialize(const std::string &line);

    /** Multi-line human-readable summary (for trace_tools / reports). */
    std::string toString() const;

    bool operator==(const TraceCharacterization &other) const;
    bool operator!=(const TraceCharacterization &other) const
    {
        return !(*this == other);
    }
};

/**
 * Characterize @p source from the beginning of its stream (reset() is
 * called first; the source is left at end of stream).  Single pass,
 * O(static branches) memory.
 */
TraceCharacterization characterizeSource(BranchSource &source);

/** Characterization from already-computed trace statistics. */
TraceCharacterization characterizationFromStats(const TraceStats &stats);

/** A named predictability class: a predicate over characterizations. */
struct CorpusClass
{
    std::string name;         //!< CLI spelling, e.g. "high-entropy"
    std::string description;  //!< threshold rule, human-readable
};

/**
 * The documented classes, in presentation order: high-entropy,
 * low-entropy, loopy, deep-loopy, flat, taken-heavy, balanced.
 */
const std::vector<CorpusClass> &knownClasses();

/**
 * Whether @p c belongs to class @p name.  Throws std::runtime_error
 * listing the known classes (and a near-miss suggestion if one is
 * close) when @p name is not a known class.
 */
bool matchesClass(const TraceCharacterization &c, const std::string &name);

} // namespace imli

#endif // IMLI_SRC_CORPUS_CHARACTERIZE_HH
