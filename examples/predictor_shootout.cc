/**
 * @file
 * Predictor shootout: the full ladder from bimodal to TAGE-GSC+IMLI on a
 * few benchmarks, demonstrating where each design generation gains its
 * accuracy — and where only the IMLI components help.
 *
 * Usage: predictor_shootout [--branches 150000]
 *                           [--benchmarks SPEC2K6-12,MM-4,WS04]
 *                           [--update-delay N | --pipeline]
 *
 * With --update-delay N the whole ladder runs on the speculative
 * pipeline engine (training at commit, N in-flight branches); delay 0 is
 * bit-identical to the default immediate engine, so the flag isolates
 * pure update-timing effects across predictor generations.
 */

#include <iostream>

#include "src/predictors/zoo.hh"
#include "src/sim/simulator.hh"
#include "src/sim/suite_runner.hh"
#include "src/util/cli.hh"
#include "src/util/table_writer.hh"
#include "src/workloads/generator_source.hh"
#include "src/workloads/suite.hh"

int
main(int argc, char **argv)
try {
    imli::CommandLine cli(argc, argv);
    const std::size_t branches = cli.getCount("branches", 150000);
    const std::vector<std::string> benchmarks = imli::splitCommaList(cli.getString(
        "benchmarks", "SPEC2K6-04,SPEC2K6-12,MM-4,CLIENT02,MM07,WS04"));
    const std::vector<std::string> ladder = {
        "bimodal",  "gshare",     "gehl",
        "gehl+i",   "tage-gsc",   "tage-gsc+i",
        "meta(tage-gsc,gehl,gshare)",
    };

    imli::SimOptions sim;
    imli::applyPipelineFlags(cli, sim);

    imli::TableWriter table(
        sim.usePipeline()
            ? "MPKI by predictor generation (pipeline, update delay " +
                  std::to_string(sim.updateDelay) + ")"
            : "MPKI by predictor generation");
    std::vector<std::string> header = {"benchmark"};
    header.insert(header.end(), ladder.begin(), ladder.end());
    table.setHeader(header);

    for (const std::string &name : benchmarks) {
        // The whole ladder rides one streamed pass of the benchmark: the
        // branch stream is generated once and never materialized.
        std::vector<imli::PredictorPtr> predictors;
        for (const std::string &spec : ladder)
            predictors.push_back(imli::makePredictor(spec));
        imli::GeneratorBranchSource source(imli::findBenchmark(name),
                                           branches);
        const std::vector<imli::SimResult> results =
            imli::simulateMany(predictors, source, sim);
        std::vector<std::string> row = {name};
        for (const imli::SimResult &r : results)
            row.push_back(imli::formatDouble(r.mpki(), 3));
        table.addRow(row);
    }
    table.print(std::cout);

    std::cout << "\nStorage budgets:\n";
    for (const std::string &spec : ladder) {
        imli::PredictorPtr predictor = imli::makePredictor(spec);
        std::cout << "  " << predictor->name() << ": "
                  << predictor->storage().totalKbits() << " Kbits\n";
    }
    return 0;
} catch (const std::exception &e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}
