/**
 * @file
 * Predictor shootout: the full ladder from bimodal to TAGE-GSC+IMLI on a
 * few benchmarks, demonstrating where each design generation gains its
 * accuracy — and where only the IMLI components help.
 *
 * Usage: predictor_shootout [--branches 150000]
 *                           [--benchmarks SPEC2K6-12,MM-4,WS04]
 *                           [--recorded DIR]  (REC-01..REC-08 become
 *                            addressable benchmark names)
 *                           [--update-delay N | --pipeline]
 *                           [--metrics FILE] [--phase-interval N]
 *
 * With --update-delay N the whole ladder runs on the speculative
 * pipeline engine (training at commit, N in-flight branches); delay 0 is
 * bit-identical to the default immediate engine, so the flag isolates
 * pure update-timing effects across predictor generations.
 *
 * --metrics exports per-(benchmark, rung) predictor-internals counters
 * as JSON (src/obs/metrics.hh); --phase-interval adds a phase-sliced
 * time series per cell.  Both are off by default and inert when off.
 */

#include <fstream>
#include <iostream>
#include <memory>

#include "src/corpus/trace_corpus.hh"
#include "src/obs/metrics.hh"
#include "src/obs/phase_series.hh"
#include "src/predictors/zoo.hh"
#include "src/sim/simulator.hh"
#include "src/sim/suite_runner.hh"
#include "src/util/cli.hh"
#include "src/util/table_writer.hh"

int
main(int argc, char **argv)
try {
    imli::CommandLine cli(argc, argv);
    const std::size_t branches = cli.getCount("branches", 150000);
    const std::vector<std::string> benchmarks = imli::splitCommaList(cli.getString(
        "benchmarks", "SPEC2K6-04,SPEC2K6-12,MM-4,CLIENT02,MM07,WS04"));
    const std::vector<std::string> ladder = {
        "bimodal",  "gshare",     "gehl",
        "gehl+i",   "tage-gsc",   "tage-gsc+i",
        "meta(tage-gsc,gehl,gshare)",
    };

    // The corpus resolves benchmark names — generated suite members
    // plus, with --recorded DIR, the REC-01..REC-08 scenarios (one
    // shared validation of the directory across all the suite CLIs).
    const imli::TraceCorpus corpus =
        imli::makeSuiteCorpus(cli.getString("recorded", ""));

    imli::SimOptions sim;
    imli::applyPipelineFlags(cli, sim);

    // Observation layer: absent unless --metrics names a file, keeping
    // the default run's inertness guarantee.  Cells are benchmark-major
    // like the suite runner's, one per (benchmark, rung).
    imli::obs::MetricsRegistry registry;
    const bool wantMetrics = cli.has("metrics");
    if (wantMetrics) {
        if (cli.has("phase-interval")) {
            const std::int64_t n = cli.getInt("phase-interval");
            if (n < 1)
                throw std::runtime_error(
                    "--phase-interval: need a branch interval >= 1");
            registry.phaseInterval = static_cast<std::size_t>(n);
        }
        registry.resize(benchmarks.size() * ladder.size());
    } else if (cli.has("phase-interval")) {
        throw std::runtime_error(
            "--phase-interval requires --metrics FILE");
    }

    imli::TableWriter table(
        sim.usePipeline()
            ? "MPKI by predictor generation (pipeline, update delay " +
                  std::to_string(sim.updateDelay) + ")"
            : "MPKI by predictor generation");
    std::vector<std::string> header = {"benchmark"};
    header.insert(header.end(), ladder.begin(), ladder.end());
    table.setHeader(header);

    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        const std::string &name = benchmarks[b];
        // The whole ladder rides one streamed pass of the benchmark: the
        // branch stream is generated once and never materialized.
        std::vector<imli::PredictorPtr> predictors;
        for (const std::string &spec : ladder)
            predictors.push_back(imli::makePredictor(spec));
        std::vector<imli::SimOptions> options(ladder.size(), sim);
        if (wantMetrics) {
            for (std::size_t c = 0; c < ladder.size(); ++c) {
                imli::obs::CellObs &oc =
                    registry.cell(b * ladder.size() + c);
                oc.benchmark = name;
                oc.config = ladder[c];
                predictors[c]->attachProbes(oc.scope);
                if (registry.phaseInterval > 0)
                    oc.phase = std::make_unique<imli::obs::PhaseRecorder>(
                        registry.phaseInterval, &oc.scope);
                options[c].metrics = &oc.scope;
                options[c].phase = oc.phase.get();
            }
        }
        const std::unique_ptr<imli::BranchSource> source =
            imli::TraceCorpus::open(corpus.find(name), branches);
        const std::vector<imli::SimResult> results =
            imli::simulateMany(predictors, *source, options);
        if (wantMetrics) {
            for (std::size_t c = 0; c < ladder.size(); ++c) {
                imli::obs::CellObs &oc =
                    registry.cell(b * ladder.size() + c);
                if (oc.phase)
                    oc.phase->finish();
            }
        }
        std::vector<std::string> row = {name};
        for (const imli::SimResult &r : results)
            row.push_back(imli::formatDouble(r.mpki(), 3));
        table.addRow(row);
    }
    table.print(std::cout);

    if (wantMetrics) {
        const std::string path = cli.getString("metrics");
        std::ofstream out(path, std::ios::binary);
        if (!out)
            throw std::runtime_error(
                "--metrics: cannot open " + path + " for writing");
        registry.writeJson(out);
        if (!out)
            throw std::runtime_error("--metrics: write failed on " + path);
    }

    std::cout << "\nStorage budgets:\n";
    for (const std::string &spec : ladder) {
        imli::PredictorPtr predictor = imli::makePredictor(spec);
        std::cout << "  " << predictor->name() << ": "
                  << predictor->storage().totalKbits() << " Kbits\n";
    }
    return 0;
} catch (const std::exception &e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}
