/**
 * @file
 * Speculative-state demonstration (paper, Section 2.3): contrasts the
 * checkpoint discipline of global-history + IMLI state against the
 * in-flight window search required by local history, on a real workload.
 *
 * Also drives the SpeculativeImliModel with an imperfect predictor to
 * show recovery correctness: after every misprediction the restored IMLI
 * state matches non-speculative execution bit for bit.
 *
 * Usage: speculative_fetch [--benchmark MM07] [--branches 100000]
 *                          [--window 64]
 */

#include <iostream>

#include "src/core/imli_components.hh"
#include "src/predictors/zoo.hh"
#include "src/sim/simulator.hh"
#include "src/spec/checkpoint.hh"
#include "src/spec/fetch_model.hh"
#include "src/util/cli.hh"
#include "src/workloads/suite.hh"

using namespace imli;

int
main(int argc, char **argv)
try {
    CommandLine cli(argc, argv);
    const std::string bench = cli.getString("benchmark", "MM07");
    const std::size_t branches = cli.getCount("branches", 100000);
    const unsigned window =
        static_cast<unsigned>(cli.getCount("window", 64));

    const Trace trace = generateTrace(findBenchmark(bench), branches);

    // --- 1. Cost of the two speculative-history disciplines -------------
    FetchModelConfig cfg;
    cfg.windowSize = window;
    const SpeculationCostReport report =
        measureSpeculationCost(trace, cfg);
    std::cout << "Speculation cost on " << bench << " (window = "
              << window << "):\n"
              << report.toString() << '\n';

    // --- 2. Checkpoint-recovery equivalence ------------------------------
    // Drive the speculative IMLI model with the predictions of a real
    // (imperfect) predictor; compare against non-speculative execution.
    PredictorPtr predictor = makePredictor("tage-gsc");
    SpeculativeImliModel spec_model;
    ImliComponents oracle; // immediate, non-speculative reference

    std::uint64_t mismatches = 0;
    for (const BranchRecord &rec : trace.branches()) {
        if (!isConditional(rec.type))
            continue;
        const bool predicted = predictor->predict(rec.pc);
        predictor->update(rec.pc, rec.taken, rec.target);
        spec_model.onBranch(rec.pc, rec.target, predicted, rec.taken);
        oracle.onResolved(rec.pc, rec.target, rec.taken);
        if (spec_model.counter().value() !=
            oracle.counter().value())
            ++mismatches;
    }
    std::cout << "Speculative IMLI model: "
              << spec_model.checkpointsTaken() << " checkpoints of "
              << spec_model.checkpointBits() << " bits, "
              << spec_model.recoveries() << " recoveries, "
              << mismatches << " state mismatches vs oracle\n";
    std::cout << (mismatches == 0
                      ? "Recovery is exact: checkpointing "
                        "{IMLI counter, PIPE} fully repairs the state.\n"
                      : "ERROR: speculative state diverged!\n");
    return mismatches == 0 ? 0 : 1;
} catch (const std::exception &e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}
