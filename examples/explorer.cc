/**
 * @file
 * Design-space exploration CLI: parameterized predictor sweeps and
 * accuracy-per-bit Pareto reports on the streaming suite engine.
 *
 * Subcommands:
 *
 *   explorer describe SPEC [SPEC...]
 *       Echo the canonical form of each spec and its fully resolved
 *       geometry + storage ledger.  `--keys` lists every override key
 *       of the spec grammar with its range.
 *
 *   explorer sweep --journal FILE [--base SPEC] [--dim key=v1,v2,...]...
 *                  [--sample N --seed S] [--points SPEC,SPEC,...]
 *                  [--benchmarks 'MM-*'] [--suite CBP4|CBP3|REC]
 *                  [--recorded DIR] [--branches N] [--jobs N]
 *                  [--json FILE] [--metrics FILE] [--phase-interval N]
 *                  [--timing FILE]
 *       Expand the parameter space (grid by default, seeded random
 *       sampling with --sample) and evaluate every point over the
 *       selected benchmarks, journaling each (benchmark, point) cell to
 *       FILE.  Rerunning with the same journal resumes: journaled cells
 *       are never re-simulated, and the final journal bytes are
 *       identical whatever the worker count or interruption history.
 *       --metrics exports per-cell predictor internals as JSON (cells
 *       resumed from the journal stay empty), --phase-interval adds a
 *       phase-sliced series per cell, and --timing writes a wall-clock
 *       sidecar CSV — all three stay out of the fingerprinted journal.
 *
 *   explorer pareto --journal FILE [--suite S] [--csv | --json]
 *       Aggregate a sweep journal per point (mean MPKI over the suite)
 *       and print every point tagged frontier/dominated, frontier first.
 *
 *   explorer plan  --journal FILE --shards N [sweep flags]
 *   explorer shard --journal FILE --shards N --shard I [sweep flags]
 *   explorer merge --journal FILE --shards N [sweep flags]
 *       Process-level sweep orchestration (src/dse/sweep.hh): `plan`
 *       prints the deterministic partition of the benchmark axis into N
 *       contiguous shards, `shard` executes shard I into the journal
 *       fragment FILE.shardI (resumable exactly like a sweep journal),
 *       and `merge` validates the fragments and rewrites the canonical
 *       journal — byte-identical to a single-process `sweep` of the same
 *       flags.  Every subcommand takes the SAME grid/selection flags and
 *       re-derives the same plan, so a driver script (or CI) fans the
 *       shard commands out across worker processes and merges once all
 *       have finished.  `sweep --shards N` runs the same plan -> shard
 *       -> merge composition in one process.
 *
 * Examples:
 *   explorer sweep --journal sic.csv --base tage-gsc+sic \
 *       --dim sic.logsize=7..10 --dim sic.ctrbits=5,6 --benchmarks 'MM-*'
 *   explorer sweep --journal delay.csv --base tage-gsc+i \
 *       --dim sim.delay=0,4,16,63 --benchmarks 'MM-*'
 *       (update timing as a dimension: sim.delay points run on the
 *        speculative pipeline engine at that in-flight depth)
 *   explorer pareto --journal sic.csv
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "src/corpus/trace_corpus.hh"
#include "src/dse/param_space.hh"
#include "src/obs/metrics.hh"
#include "src/dse/pareto.hh"
#include "src/dse/sweep.hh"
#include "src/predictors/zoo.hh"
#include "src/sim/suite_runner.hh"
#include "src/util/cli.hh"
#include "src/util/table_writer.hh"
#include "src/util/thread_pool.hh"

using namespace imli;

namespace
{

int
usage()
{
    std::cerr << "usage: explorer describe SPEC [SPEC...] | --keys\n"
              << "       explorer sweep --journal FILE [--base SPEC]"
                 " [--dim key=v1,v2]... [--sample N --seed S]\n"
              << "                      [--points SPECS] [--benchmarks"
                 " GLOBS] [--suite S] [--recorded DIR]\n"
              << "                      [--class NAME] [--char-cache DIR]"
                 " [--branches N] [--jobs N]\n"
              << "                      [--shards N] [--json FILE]"
                 " [--metrics FILE]\n"
              << "                      [--phase-interval N]"
                 " [--timing FILE]\n"
              << "       explorer plan  --journal FILE --shards N"
                 " [sweep flags]\n"
              << "       explorer shard --journal FILE --shards N"
                 " --shard I [sweep flags]\n"
              << "       explorer merge --journal FILE --shards N"
                 " [sweep flags]\n"
              << "       explorer pareto --journal FILE [--suite S]"
                 " [--csv | --json]\n";
    return 1;
}

/**
 * The benchmark pool shared by sweep/plan/shard/merge, via the corpus
 * layer: full generated suite + optional --recorded, filtered by
 * --suite / --benchmarks globs / --class (characterization-derived
 * predictability classes; see src/corpus/characterize.hh).
 */
std::vector<BenchmarkSpec>
selectPool(const CommandLine &cli)
{
    CorpusQuery query;
    query.recordedDir = cli.getString("recorded", "");
    query.suite = cli.getString("suite", "");
    query.patterns = splitCommaList(cli.getString("benchmarks", ""));
    query.className = cli.getString("class", "");
    query.characterizationCacheDir = cli.getString("char-cache", "");
    if (cli.has("branches"))
        query.targetBranches =
            parseBranchCount(cli.getString("branches"), "--branches");
    return selectSuiteBenchmarks(query);
}

int
cmdDescribe(const CommandLine &cli)
{
    // Specs may arrive as positionals or — when the flag parser's value
    // lookahead binds one to a bare --keys — as that flag's value
    // ("describe --keys tage-gsc" must show both outputs, not usage).
    std::vector<std::string> specs(cli.positionals().begin() + 1,
                                   cli.positionals().end());
    if (!cli.getString("keys").empty())
        specs.insert(specs.begin(), cli.getString("keys"));

    if (cli.has("keys")) {
        TableWriter table("Override keys (spec@key=value,...)");
        table.setHeader({"key", "min", "max", "host", "description"});
        for (const OverrideKeyInfo &info : knownOverrideKeys()) {
            table.addRow({info.key, std::to_string(info.minValue),
                          std::to_string(info.maxValue),
                          info.tageGscOnly ? "tage-gsc"
                          : info.metaOnly  ? "meta"
                                           : "hosts",
                          info.doc + (info.powerOfTwo ? " (power of 2)"
                                                      : "")});
        }
        table.print(std::cout);
        if (!specs.empty())
            std::cout << '\n';
    } else if (specs.empty()) {
        return usage();
    }
    for (std::size_t i = 0; i < specs.size(); ++i) {
        std::cout << describeConfigDetail(parseSpec(specs[i]));
        if (i + 1 < specs.size())
            std::cout << '\n';
    }
    return 0;
}

/** Expand the declared parameter space into canonical config points. */
std::vector<std::string>
expandPoints(const CommandLine &cli)
{
    if (cli.has("points")) {
        // An explicit point list and a declared space are two different
        // sweeps; combining them would silently drop one, so refuse.
        if (cli.has("base") || cli.has("dim") || cli.has("sample") ||
            cli.has("seed"))
            throw std::runtime_error(
                "--points cannot be combined with --base/--dim/--sample/"
                "--seed (give either an explicit point list or a space "
                "to expand)");
        std::vector<std::string> points;
        for (const std::string &spec :
             splitSpecList(cli.getString("points")))
            points.push_back(canonicalSpec(spec));
        return points;
    }
    ParamSpace space;
    space.baseSpec = cli.getString("base", "tage-gsc");
    for (const std::string &dim : cli.getList("dim"))
        space.dimensions.push_back(parseDimension(dim));
    if (cli.has("sample")) {
        const std::size_t count =
            cli.getCount("sample");
        if (count == 0)
            throw std::runtime_error("--sample: need a count >= 1");
        return space.sampleRandom(
            count, static_cast<std::uint64_t>(cli.getInt("seed", 1)));
    }
    // A seed without --sample would silently run a different experiment
    // (the full grid); refuse like every other misused flag.
    if (cli.has("seed"))
        throw std::runtime_error(
            "--seed only applies to --sample N (grid expansion is "
            "exhaustive and unseeded)");
    return space.expandGrid();
}

/** Sweep options shared by sweep/plan/shard/merge (same flags -> same
 *  journal fingerprint, which is what lets them re-derive one plan). */
SweepOptions
makeSweepOptions(const CommandLine &cli)
{
    SweepOptions options;
    options.journalPath = cli.getString("journal");
    options.branchesPerTrace =
        cli.has("branches")
            ? parseBranchCount(cli.getString("branches"), "--branches")
            : defaultBranchesPerTrace();
    options.jobs = cli.has("jobs")
                       ? ThreadPool::parseJobsStrict(cli.getString("jobs"),
                                                     "--jobs")
                       : defaultJobs();
    options.progress = [](const std::string &name, std::size_t simulated) {
        std::cerr << "  " << name << ": " << simulated
                  << " points simulated\n";
    };
    return options;
}

/** Parse --shards N (>= 1); the count every orchestration subcommand
 *  must agree on. */
std::size_t
parseShardCount(const CommandLine &cli)
{
    const std::int64_t n = cli.getInt("shards");
    if (n < 1)
        throw std::runtime_error("--shards: need a shard count >= 1");
    return static_cast<std::size_t>(n);
}

/** First..last display form of a shard's benchmark range. */
std::string
describeRange(const ShardPlan &plan, const ShardRange &range)
{
    if (range.benchmarkCount() == 0)
        return "(empty)";
    std::string text = plan.benchmarks[range.beginBench];
    if (range.benchmarkCount() > 1)
        text += ".." + plan.benchmarks[range.endBench - 1];
    return text;
}

int
cmdSweep(const CommandLine &cli)
{
    if (!cli.has("journal")) {
        std::cerr << "error: sweep needs --journal FILE\n";
        return usage();
    }
    // --json takes a file path here (unlike the boolean mode switches of
    // suite_report / pareto); catch a bare --json before the sweep runs,
    // not after minutes of simulation.
    if (cli.has("json") && cli.getString("json").empty()) {
        std::cerr << "error: sweep's --json needs a file path\n";
        return usage();
    }
    const std::vector<std::string> points = expandPoints(cli);
    const std::vector<BenchmarkSpec> benchmarks = selectPool(cli);
    SweepOptions options = makeSweepOptions(cli);

    // The observation sidecars attach to ONE process's run: sharded
    // composition runs several (one per fragment plus the merge), which
    // would resize the registry per shard and overwrite the sidecar
    // files.  Refuse the combination rather than export garbage.
    if (cli.has("shards") &&
        (cli.has("metrics") || cli.has("phase-interval") ||
         cli.has("timing")))
        throw std::runtime_error(
            "--metrics/--phase-interval/--timing cannot be combined with "
            "--shards (run the observed sweep unsharded, or observe a "
            "single `explorer shard`)");

    // Observation layer (off by default, inert when off): --metrics FILE
    // exports per-cell predictor internals, --phase-interval N adds a
    // phase series per cell, --timing FILE writes the wall-clock sidecar.
    // None of these joins the fingerprinted journal.
    obs::MetricsRegistry registry;
    if (cli.has("metrics")) {
        if (cli.has("phase-interval")) {
            const std::int64_t n = cli.getInt("phase-interval");
            if (n < 1)
                throw std::runtime_error(
                    "--phase-interval: need a branch interval >= 1");
            registry.phaseInterval = static_cast<std::size_t>(n);
        }
        options.metrics = &registry;
    } else if (cli.has("phase-interval")) {
        throw std::runtime_error(
            "--phase-interval requires --metrics FILE");
    }
    if (cli.has("timing"))
        options.timingSidecarPath = cli.getString("timing");

    // Open the --json output before simulating: an unwritable path must
    // fail now, not after minutes of sweep (same rationale as the bare
    // --json guard above).  Write to a temp file and rename at the end
    // so a failed sweep cannot destroy a previous run's JSON.
    std::ofstream jsonOut;
    const std::string jsonTmp =
        cli.has("json") ? cli.getString("json") + ".tmp" : "";
    if (cli.has("json")) {
        jsonOut.open(jsonTmp, std::ios::binary | std::ios::trunc);
        if (!jsonOut)
            throw std::runtime_error("cannot write --json file: " +
                                     cli.getString("json"));
    }

    std::cerr << "sweep: " << points.size() << " points x "
              << benchmarks.size() << " benchmarks -> "
              << options.journalPath << '\n';
    SweepResults results;
    try {
        if (cli.has("shards")) {
            // The thin plan -> shard -> merge composition: same code
            // path the process-level subcommands drive, one process.
            // The merged journal is byte-identical to the unsharded run.
            const std::size_t nshards = parseShardCount(cli);
            const ShardPlan plan =
                planShards(benchmarks, points, options, nshards);
            for (const ShardRange &range : plan.shards) {
                std::cerr << "shard " << range.index << ": "
                          << describeRange(plan, range) << '\n';
                const SweepResults shard =
                    runShard(benchmarks, points, options, range);
                results.simulatedCells += shard.simulatedCells;
            }
            const std::size_t simulated = results.simulatedCells;
            results = mergeShardJournals(benchmarks, points, options,
                                         nshards);
            results.simulatedCells = simulated;
        } else {
            results = runSweep(benchmarks, points, options);
        }
    } catch (...) {
        // Don't leak the --json temp file when the sweep fails.
        jsonOut.close();
        if (!jsonTmp.empty())
            std::remove(jsonTmp.c_str());
        throw;
    }

    // Per-point aggregates via the pareto layer (entries come back in
    // first-appearance order, i.e. the declared point order).
    const std::vector<ParetoEntry> perPoint = aggregateCells(results.cells);

    TableWriter table("Sweep summary (mean MPKI over selection)");
    table.setHeader({"spec", "storage_kbits", "avg_mpki"});
    for (const ParetoEntry &entry : perPoint) {
        table.addRow({entry.spec,
                      formatDouble(entry.storageBits / 1024.0, 1),
                      formatDouble(entry.avgMpki, 4)});
    }
    table.print(std::cout);
    std::cout << "journal: " << options.journalPath << " ("
              << results.cells.size() << " cells, "
              << results.simulatedCells << " simulated this run)\n";

    if (cli.has("metrics")) {
        const std::string path = cli.getString("metrics");
        std::ofstream out(path, std::ios::binary);
        if (!out)
            throw std::runtime_error(
                "--metrics: cannot open " + path + " for writing");
        registry.writeJson(out);
        if (!out)
            throw std::runtime_error("--metrics: write failed on " + path);
    }

    if (cli.has("json")) {
        std::ofstream &os = jsonOut;
        os << "{\n  \"points\": [\n";
        for (std::size_t p = 0; p < perPoint.size(); ++p) {
            os << "    {\"spec\": \"" << jsonEscape(perPoint[p].spec)
               << "\", \"storage_bits\": " << perPoint[p].storageBits
               << ", \"avg_mpki\": "
               << formatDouble(perPoint[p].avgMpki, 4) << '}'
               << (p + 1 < perPoint.size() ? "," : "") << '\n';
        }
        os << "  ],\n  \"cells\": " << results.cells.size() << "\n}\n";
        os.close();
        if (!os || std::rename(jsonTmp.c_str(),
                               cli.getString("json").c_str()) != 0)
            throw std::runtime_error("cannot write --json file: " +
                                     cli.getString("json"));
    }
    return 0;
}

/** Shared front half of plan/shard/merge: validated grid + pool +
 *  options under one required --journal / --shards pair. */
struct ShardInputs
{
    std::vector<std::string> points;
    std::vector<BenchmarkSpec> benchmarks;
    SweepOptions options;
    std::size_t shardCount = 0;
};

bool
gatherShardInputs(const CommandLine &cli, const char *what,
                  ShardInputs &inputs)
{
    if (!cli.has("journal")) {
        std::cerr << "error: " << what << " needs --journal FILE\n";
        return false;
    }
    if (!cli.has("shards")) {
        std::cerr << "error: " << what << " needs --shards N\n";
        return false;
    }
    inputs.points = expandPoints(cli);
    inputs.benchmarks = selectPool(cli);
    inputs.options = makeSweepOptions(cli);
    inputs.shardCount = parseShardCount(cli);
    return true;
}

int
cmdPlan(const CommandLine &cli)
{
    ShardInputs in;
    if (!gatherShardInputs(cli, "plan", in))
        return usage();
    const ShardPlan plan =
        planShards(in.benchmarks, in.points, in.options, in.shardCount);

    TableWriter table("Shard plan: " +
                      std::to_string(plan.benchmarks.size()) +
                      " benchmarks x " + std::to_string(plan.points.size()) +
                      " points");
    table.setHeader({"shard", "benchmarks", "range", "fragment"});
    for (const ShardRange &range : plan.shards)
        table.addRow({std::to_string(range.index),
                      std::to_string(range.benchmarkCount()),
                      describeRange(plan, range),
                      shardJournalPath(in.options.journalPath,
                                       range.index)});
    table.print(std::cout);
    std::cout << "meta: " << plan.meta << '\n';
    return 0;
}

int
cmdShard(const CommandLine &cli)
{
    ShardInputs in;
    if (!gatherShardInputs(cli, "shard", in))
        return usage();
    if (!cli.has("shard")) {
        std::cerr << "error: shard needs --shard I (which shard to run)\n";
        return usage();
    }
    const std::int64_t index = cli.getInt("shard");
    if (index < 0 || static_cast<std::size_t>(index) >= in.shardCount)
        throw std::runtime_error(
            "--shard: index " + std::to_string(index) +
            " is outside the plan (need 0.." +
            std::to_string(in.shardCount - 1) + ")");

    const ShardPlan plan =
        planShards(in.benchmarks, in.points, in.options, in.shardCount);
    const ShardRange &range =
        plan.shards[static_cast<std::size_t>(index)];
    const std::string fragment =
        shardJournalPath(in.options.journalPath, range.index);
    std::cerr << "shard " << range.index << "/" << in.shardCount << ": "
              << describeRange(plan, range) << " x "
              << plan.points.size() << " points -> " << fragment << '\n';
    const SweepResults results =
        runShard(in.benchmarks, in.points, in.options, range);
    std::cout << "fragment: " << fragment << " ("
              << results.cells.size() << " cells, "
              << results.simulatedCells << " simulated this run)\n";
    return 0;
}

int
cmdMerge(const CommandLine &cli)
{
    ShardInputs in;
    if (!gatherShardInputs(cli, "merge", in))
        return usage();

    // Incremental Pareto re-aggregation as each fragment lands: the
    // running frontier over partial averages (cells merged so far).
    const MergeProgress progress = [](const ShardRange &range,
                                      const std::vector<ParetoEntry>
                                          &entries) {
        std::size_t frontier = 0;
        for (const ParetoEntry &e : entries)
            if (!e.dominated)
                ++frontier;
        std::cerr << "  shard " << range.index << " merged: "
                  << entries.size() << " specs aggregated, " << frontier
                  << " on the running frontier\n";
    };
    const SweepResults results = mergeShardJournals(
        in.benchmarks, in.points, in.options, in.shardCount, progress);

    const std::vector<ParetoEntry> perPoint = aggregateCells(results.cells);
    TableWriter table("Merged sweep (mean MPKI over selection)");
    table.setHeader({"spec", "storage_kbits", "avg_mpki"});
    for (const ParetoEntry &entry : perPoint)
        table.addRow({entry.spec,
                      formatDouble(entry.storageBits / 1024.0, 1),
                      formatDouble(entry.avgMpki, 4)});
    table.print(std::cout);
    std::cout << "journal: " << in.options.journalPath << " ("
              << results.cells.size() << " cells from " << in.shardCount
              << " shards)\n";
    return 0;
}

int
cmdPareto(const CommandLine &cli)
{
    if (!cli.has("journal")) {
        std::cerr << "error: pareto needs --journal FILE\n";
        return usage();
    }
    // --csv/--json are output-mode booleans here (they print to stdout,
    // unlike sweep's --json FILE); a path value or an ambiguous
    // combination fails loudly.
    cli.rejectValuedBool("csv");
    cli.rejectValuedBool("json");
    if (cli.getBool("csv") && cli.getBool("json")) {
        std::cerr << "error: pick one of --csv or --json\n";
        return 1;
    }
    const std::vector<SweepCell> cells =
        loadJournal(cli.getString("journal"));
    std::vector<ParetoEntry> entries =
        aggregateCells(cells, cli.getString("suite", ""));
    if (entries.empty()) {
        std::cerr << "error: journal has no cells"
                  << (cli.has("suite") ? " for that suite" : "") << '\n';
        return 1;
    }
    markDominated(entries);

    // Frontier first (storage ascending), then the dominated points in
    // journal order — one dominance pass, one container.
    std::vector<const ParetoEntry *> ordered;
    for (const ParetoEntry &e : entries)
        if (!e.dominated)
            ordered.push_back(&e);
    const std::size_t frontierCount = ordered.size();
    std::sort(ordered.begin(), ordered.begin() + frontierCount,
              [](const ParetoEntry *a, const ParetoEntry *b) {
                  return paretoOrderLess(*a, *b);
              });
    for (const ParetoEntry &e : entries)
        if (e.dominated)
            ordered.push_back(&e);

    if (cli.getBool("csv") || cli.getBool("json")) {
        const bool json = cli.getBool("json");
        if (json)
            std::cout << "{\n  \"points\": [\n";
        else
            std::cout << "spec,storage_bits,avg_mpki,benchmarks,"
                         "dominated\n";
        for (std::size_t i = 0; i < ordered.size(); ++i) {
            const ParetoEntry &e = *ordered[i];
            if (json) {
                std::cout << "    {\"spec\": \"" << jsonEscape(e.spec)
                          << "\", \"storage_bits\": " << e.storageBits
                          << ", \"avg_mpki\": "
                          << formatDouble(e.avgMpki, 4)
                          << ", \"benchmarks\": " << e.benchmarkCount
                          << ", \"dominated\": "
                          << (e.dominated ? "true" : "false") << '}'
                          << (i + 1 < ordered.size() ? "," : "") << '\n';
            } else {
                std::cout << '"' << e.spec << "\"," << e.storageBits << ','
                          << formatDouble(e.avgMpki, 4) << ','
                          << e.benchmarkCount << ','
                          << (e.dominated ? 1 : 0) << '\n';
            }
        }
        if (json)
            std::cout << "  ]\n}\n";
        return 0;
    }

    TableWriter table("MPKI vs storage Pareto");
    table.setHeader({"spec", "storage_kbits", "avg_mpki", "status"});
    for (const ParetoEntry *e : ordered)
        table.addRow({e->spec, formatDouble(e->storageBits / 1024.0, 1),
                      formatDouble(e->avgMpki, 4),
                      e->dominated ? "dominated" : "frontier"});
    table.print(std::cout);
    std::cout << frontierCount << " of " << entries.size()
              << " points on the frontier\n";
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
try {
    CommandLine cli(argc, argv);
    if (cli.positionals().empty())
        return usage();
    const std::string &command = cli.positionals()[0];
    if (command == "describe")
        return cmdDescribe(cli);
    if (command == "sweep")
        return cmdSweep(cli);
    if (command == "plan")
        return cmdPlan(cli);
    if (command == "shard")
        return cmdShard(cli);
    if (command == "merge")
        return cmdMerge(cli);
    if (command == "pareto")
        return cmdPareto(cli);
    std::cerr << "error: unknown subcommand \"" << command << "\"\n";
    return usage();
} catch (const std::exception &e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}
