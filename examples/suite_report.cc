/**
 * @file
 * Suite report: run arbitrary predictor configurations over the full
 * synthetic suite (or a subset) and print per-benchmark MPKI plus suite
 * averages.  The workhorse behind workload calibration and a template for
 * custom experiments.
 *
 * Usage: suite_report [--configs tage-gsc,tage-gsc+i]
 *                     [--suite CBP4|CBP3|REC] [--branches 200000]
 *                     [--benchmarks 'MM-*,WS03']  (glob patterns; a
 *                      pattern matching nothing errors with near-misses)
 *                     [--csv | --json]  (machine-readable cell dumps
 *                      with stable field order)
 *                     [--recorded DIR]  (append the REC-01..REC-08
 *                      recorded scenarios from DIR/rec-0N.cbp — a mixed
 *                      generated + recorded run)
 *                     [--class NAME]  (keep only benchmarks of one
 *                      characterization-derived predictability class —
 *                      high-entropy, loopy, flat, ... — measured at the
 *                      run's --branches budget; an unknown name errors
 *                      with the known classes and a near-miss hint.  See
 *                      src/corpus/characterize.hh for the definitions)
 *                     [--char-cache DIR]  (persist per-trace
 *                      characterizations under DIR, keyed by content
 *                      fingerprint, so repeated --class runs skip the
 *                      characterization pass)
 *                     [--jobs N]   (0/auto = all hardware threads)
 *                     [--update-delay N | --pipeline]  (speculative
 *                      pipeline engine: predictor tables train at commit,
 *                      N in-flight branches after prediction; N=0 — or
 *                      bare --pipeline — is bit-identical to the default
 *                      immediate engine.  Per-config delays also work via
 *                      the spec key, e.g. --configs
 *                      'tage-gsc+i,tage-gsc+i@sim.delay=63')
 *                     [--prefetch N]  (software-prefetch lookahead in
 *                      records, 0..64; a pure throughput knob — results
 *                      are bit-identical at any value.  Per-config via
 *                      the sim.prefetch spec key)
 *                     [--metrics FILE]  (export predictor-internals
 *                      metrics as JSON; see src/obs/metrics.hh.  Off by
 *                      default and provably inert when off: prediction
 *                      output is byte-identical either way)
 *                     [--phase-interval N]  (with --metrics: record a
 *                      phase-sliced time series every N branches)
 *                     [--trace-events FILE]  (pipeline engine only, one
 *                      benchmark x one config: Chrome trace-event JSON
 *                      of fetch/predict/commit/squash, loadable in
 *                      Perfetto / chrome://tracing)
 *                     [--progress]  (per-benchmark heartbeat on stderr)
 *
 * Configs may carry design-space overrides ("tage-gsc@sic.logsize=10");
 * see src/predictors/zoo.hh for the grammar and `explorer` for sweeps.
 */

#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>

#include "src/corpus/trace_corpus.hh"
#include "src/obs/metrics.hh"
#include "src/obs/trace_event.hh"
#include "src/predictors/zoo.hh"
#include "src/sim/report.hh"
#include "src/sim/suite_runner.hh"
#include "src/util/cli.hh"
#include "src/util/thread_pool.hh"

using namespace imli;

int
main(int argc, char **argv)
try {
    CommandLine cli(argc, argv);
    // --csv/--json are output-mode booleans; a path value ("--json
    // out.json") would be silently swallowed by getBool, so fail loudly.
    cli.rejectValuedBool("csv");
    cli.rejectValuedBool("json");
    if (cli.getBool("csv") && cli.getBool("json")) {
        std::cerr << "error: pick one of --csv or --json\n";
        return 1;
    }
    // splitSpecList keeps override commas ("a@x=1,y=2") inside their spec.
    const std::vector<std::string> configs =
        splitSpecList(cli.getString("configs", "tage-gsc,tage-gsc+i"));
    const std::string which = cli.getString("suite", "");
    const std::string only = cli.getString("benchmarks", "");

    // Flags parse strictly, like the env overrides; env defaults are only
    // consulted when the flag is absent, so an explicit flag still works
    // under a malformed env var.
    const std::size_t branchesPerTrace =
        cli.has("branches")
            ? parseBranchCount(cli.getString("branches"), "--branches")
            : defaultBranchesPerTrace();

    // The candidate pool, via the corpus layer: the 80 generated members
    // plus the recorded scenarios when --recorded names their directory,
    // filtered by --suite / --benchmarks globs / --class (suite_runner
    // schedules both backends identically).  Every selection problem —
    // pattern matching nothing (with near-miss suggestions), unknown
    // class, invalid recorded dir, empty result — throws with the shared
    // recordedHint appended, so "MM4" vs "MM-4" fails loudly and --suite
    // REC without --recorded DIR points at the missing flag.
    std::vector<BenchmarkSpec> benchmarks;
    try {
        CorpusQuery query;
        query.recordedDir = cli.getString("recorded", "");
        query.suite = which;
        query.patterns = splitCommaList(only);
        query.className = cli.getString("class", "");
        query.characterizationCacheDir = cli.getString("char-cache", "");
        query.targetBranches = branchesPerTrace;
        benchmarks = selectSuiteBenchmarks(query);
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }

    SuiteRunOptions options;
    options.branchesPerTrace = branchesPerTrace;
    options.jobs = cli.has("jobs")
                       ? ThreadPool::parseJobsStrict(cli.getString("jobs"),
                                                     "--jobs")
                       : defaultJobs();
    // Pipeline engine selection: --update-delay N (strict; 0 is the
    // bit-identity oracle) or bare --pipeline (delay 0).
    applyPipelineFlags(cli, options.sim);
    // Software-prefetch lookahead: --prefetch N (throughput knob only;
    // results are bit-identical at any value).
    applyPrefetchFlag(cli, options.sim);

    // Observation layer: entirely absent unless requested, so the default
    // path keeps its inertness guarantee (no registry, no probes).
    obs::MetricsRegistry registry;
    if (cli.has("metrics")) {
        if (cli.has("phase-interval")) {
            const std::int64_t n = cli.getInt("phase-interval");
            if (n < 1)
                throw std::runtime_error(
                    "--phase-interval: need a branch interval >= 1");
            registry.phaseInterval = static_cast<std::size_t>(n);
        }
        options.metrics = &registry;
    } else if (cli.has("phase-interval")) {
        throw std::runtime_error(
            "--phase-interval requires --metrics FILE");
    }

    std::ofstream traceFile;
    std::unique_ptr<obs::TraceEventWriter> traceWriter;
    if (cli.has("trace-events")) {
        // One stream, one cell: interleaved cells would share the writer,
        // and the immediate engine emits no events at all.
        if (!options.sim.usePipeline())
            throw std::runtime_error(
                "--trace-events requires the pipeline engine "
                "(--pipeline or --update-delay N)");
        if (benchmarks.size() != 1 || configs.size() != 1)
            throw std::runtime_error(
                "--trace-events requires exactly one benchmark and one "
                "config (got " + std::to_string(benchmarks.size()) +
                " benchmarks x " + std::to_string(configs.size()) +
                " configs)");
        const std::string path = cli.getString("trace-events");
        traceFile.open(path, std::ios::binary);
        if (!traceFile)
            throw std::runtime_error(
                "--trace-events: cannot open " + path + " for writing");
        traceWriter = std::make_unique<obs::TraceEventWriter>(traceFile);
        options.traceEvents = traceWriter.get();
    }

    cli.rejectValuedBool("progress");
    std::size_t heartbeatDone = 0;
    std::mutex heartbeatMutex; // progress fires from worker threads
    if (cli.getBool("progress")) {
        const std::size_t totalCells = benchmarks.size() * configs.size();
        options.progress = [&, totalCells](const std::string &name,
                                           std::size_t) {
            std::lock_guard<std::mutex> lock(heartbeatMutex);
            ++heartbeatDone;
            std::cerr << "[suite_report] " << heartbeatDone << "/"
                      << totalCells << " cells (" << name << ")\n";
        };
    }

    const SuiteResults results = runSuite(benchmarks, configs, options);

    if (traceWriter) {
        traceWriter->close();
        if (!traceFile)
            throw std::runtime_error(
                "--trace-events: write failed on " +
                cli.getString("trace-events"));
    }
    if (cli.has("metrics")) {
        const std::string path = cli.getString("metrics");
        std::ofstream out(path, std::ios::binary);
        if (!out)
            throw std::runtime_error(
                "--metrics: cannot open " + path + " for writing");
        registry.writeJson(out);
        if (!out)
            throw std::runtime_error("--metrics: write failed on " + path);
    }

    if (cli.getBool("csv")) {
        printCellsCsv(std::cout, results);
        return 0;
    }
    if (cli.getBool("json")) {
        printCellsJson(std::cout, results);
        return 0;
    }

    printPerBenchmark(std::cout, results, results.benchmarkNames(), configs,
                      "Per-benchmark MPKI");
    printRunSummary(std::cout, results, options.jobs);

    bool has_recorded = false;
    for (const BenchmarkSpec &b : benchmarks)
        has_recorded = has_recorded || b.suite == "REC";

    std::cout << "Suite averages (MPKI):\n";
    for (const std::string &config : configs) {
        std::cout << "  " << config << ": "
                  << "CBP4 " << results.averageMpki(config, "CBP4")
                  << ", CBP3 " << results.averageMpki(config, "CBP3");
        if (has_recorded)
            std::cout << ", REC " << results.averageMpki(config, "REC");
        std::cout << ", all " << results.averageMpki(config) << '\n';
    }
    return 0;
} catch (const std::exception &e) {
    // Bad env overrides (IMLI_BRANCHES/IMLI_JOBS) or unknown specs: fail
    // with the message, not a raw terminate().
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}
