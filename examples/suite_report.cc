/**
 * @file
 * Suite report: run arbitrary predictor configurations over the full
 * synthetic suite (or a subset) and print per-benchmark MPKI plus suite
 * averages.  The workhorse behind workload calibration and a template for
 * custom experiments.
 *
 * Usage: suite_report [--configs tage-gsc,tage-gsc+i]
 *                     [--suite CBP4|CBP3] [--branches 200000]
 *                     [--benchmarks NAME1,NAME2] [--csv]
 *                     [--jobs N]   (0/auto = all hardware threads)
 */

#include <chrono>
#include <iostream>
#include <sstream>

#include "src/sim/report.hh"
#include "src/sim/suite_runner.hh"
#include "src/util/cli.hh"
#include "src/util/thread_pool.hh"
#include "src/workloads/suite.hh"

using namespace imli;

namespace
{

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::string token;
    std::istringstream is(csv);
    while (std::getline(is, token, ','))
        if (!token.empty())
            out.push_back(token);
    return out;
}

} // anonymous namespace

int
main(int argc, char **argv)
try {
    CommandLine cli(argc, argv);
    const std::vector<std::string> configs =
        splitList(cli.getString("configs", "tage-gsc,tage-gsc+i"));
    const std::string which = cli.getString("suite", "");
    const std::string only = cli.getString("benchmarks", "");

    std::vector<BenchmarkSpec> benchmarks;
    for (BenchmarkSpec &b : fullSuite()) {
        if (!which.empty() && b.suite != which)
            continue;
        if (!only.empty()) {
            bool match = false;
            for (const std::string &name : splitList(only))
                if (b.name == name)
                    match = true;
            if (!match)
                continue;
        }
        benchmarks.push_back(std::move(b));
    }

    SuiteRunOptions options;
    // Flags parse strictly, like the env overrides; env defaults are only
    // consulted when the flag is absent, so an explicit flag still works
    // under a malformed env var.
    options.branchesPerTrace =
        cli.has("branches")
            ? parseBranchCount(cli.getString("branches"), "--branches")
            : defaultBranchesPerTrace();
    options.jobs = cli.has("jobs")
                       ? ThreadPool::parseJobsStrict(cli.getString("jobs"),
                                                     "--jobs")
                       : defaultJobs();

    const auto start = std::chrono::steady_clock::now();
    const SuiteResults results = runSuite(benchmarks, configs, options);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    if (cli.getBool("csv")) {
        printCellsCsv(std::cout, results);
        return 0;
    }

    printPerBenchmark(std::cout, results, results.benchmarkNames(), configs,
                      "Per-benchmark MPKI");
    printRunSummary(std::cout, results, seconds, options.jobs);

    std::cout << "Suite averages (MPKI):\n";
    for (const std::string &config : configs) {
        std::cout << "  " << config << ": "
                  << "CBP4 " << results.averageMpki(config, "CBP4")
                  << ", CBP3 " << results.averageMpki(config, "CBP3")
                  << ", all " << results.averageMpki(config) << '\n';
    }
    return 0;
} catch (const std::exception &e) {
    // Bad env overrides (IMLI_BRANCHES/IMLI_JOBS) or unknown specs: fail
    // with the message, not a raw terminate().
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}
