/**
 * @file
 * Suite report: run arbitrary predictor configurations over the full
 * synthetic suite (or a subset) and print per-benchmark MPKI plus suite
 * averages.  The workhorse behind workload calibration and a template for
 * custom experiments.
 *
 * Usage: suite_report [--configs tage-gsc,tage-gsc+i]
 *                     [--suite CBP4|CBP3|REC] [--branches 200000]
 *                     [--benchmarks NAME1,NAME2] [--csv]
 *                     [--recorded DIR]  (append the REC-01..REC-08
 *                      recorded scenarios from DIR/rec-0N.cbp — a mixed
 *                      generated + recorded run)
 *                     [--jobs N]   (0/auto = all hardware threads)
 */

#include <chrono>
#include <iostream>
#include <sstream>

#include "src/sim/report.hh"
#include "src/sim/suite_runner.hh"
#include "src/util/cli.hh"
#include "src/util/thread_pool.hh"
#include "src/workloads/suite.hh"

using namespace imli;

namespace
{

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::string token;
    std::istringstream is(csv);
    while (std::getline(is, token, ','))
        if (!token.empty())
            out.push_back(token);
    return out;
}

} // anonymous namespace

int
main(int argc, char **argv)
try {
    CommandLine cli(argc, argv);
    const std::vector<std::string> configs =
        splitList(cli.getString("configs", "tage-gsc,tage-gsc+i"));
    const std::string which = cli.getString("suite", "");
    const std::string only = cli.getString("benchmarks", "");

    // The candidate pool: the 80 generated members, plus the recorded
    // scenarios when --recorded names their directory (a mixed suite —
    // the runner schedules both backends identically).
    std::vector<BenchmarkSpec> pool = fullSuite();
    if (cli.has("recorded")) {
        std::vector<BenchmarkSpec> recorded =
            recordedSuite(cli.getString("recorded"));
        pool.insert(pool.end(), std::make_move_iterator(recorded.begin()),
                    std::make_move_iterator(recorded.end()));
    }

    std::vector<BenchmarkSpec> benchmarks;
    for (BenchmarkSpec &b : pool) {
        if (!which.empty() && b.suite != which)
            continue;
        if (!only.empty()) {
            bool match = false;
            for (const std::string &name : splitList(only))
                if (b.name == name)
                    match = true;
            if (!match)
                continue;
        }
        benchmarks.push_back(std::move(b));
    }
    if (benchmarks.empty()) {
        // An all-zero "0 cells" report looks like a successful run; an
        // empty selection is always a usage error (e.g. --suite REC or
        // --benchmarks REC-05 without --recorded DIR).
        bool wants_rec = which == "REC";
        for (const std::string &name : splitList(only))
            wants_rec = wants_rec || name.rfind("REC-", 0) == 0;
        std::cerr << "error: no benchmarks selected";
        if (!cli.has("recorded") && wants_rec)
            std::cerr << " (the REC scenarios need --recorded DIR)";
        std::cerr << '\n';
        return 1;
    }

    SuiteRunOptions options;
    // Flags parse strictly, like the env overrides; env defaults are only
    // consulted when the flag is absent, so an explicit flag still works
    // under a malformed env var.
    options.branchesPerTrace =
        cli.has("branches")
            ? parseBranchCount(cli.getString("branches"), "--branches")
            : defaultBranchesPerTrace();
    options.jobs = cli.has("jobs")
                       ? ThreadPool::parseJobsStrict(cli.getString("jobs"),
                                                     "--jobs")
                       : defaultJobs();

    const auto start = std::chrono::steady_clock::now();
    const SuiteResults results = runSuite(benchmarks, configs, options);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    if (cli.getBool("csv")) {
        printCellsCsv(std::cout, results);
        return 0;
    }

    printPerBenchmark(std::cout, results, results.benchmarkNames(), configs,
                      "Per-benchmark MPKI");
    printRunSummary(std::cout, results, seconds, options.jobs);

    bool has_recorded = false;
    for (const BenchmarkSpec &b : benchmarks)
        has_recorded = has_recorded || b.suite == "REC";

    std::cout << "Suite averages (MPKI):\n";
    for (const std::string &config : configs) {
        std::cout << "  " << config << ": "
                  << "CBP4 " << results.averageMpki(config, "CBP4")
                  << ", CBP3 " << results.averageMpki(config, "CBP3");
        if (has_recorded)
            std::cout << ", REC " << results.averageMpki(config, "REC");
        std::cout << ", all " << results.averageMpki(config) << '\n';
    }
    return 0;
} catch (const std::exception &e) {
    // Bad env overrides (IMLI_BRANCHES/IMLI_JOBS) or unknown specs: fail
    // with the message, not a raw terminate().
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}
