/**
 * @file
 * Trace tooling: generate, inspect, convert and round-trip trace files
 * in the native (.imt), text and CBP formats.
 *
 * Subcommands:
 *   trace_tools generate --benchmark NAME --out FILE [--branches N]
 *                        [--format binary|text|cbp]
 *   trace_tools import   --in FILE.cbp --out FILE.imt [--name NAME]
 *   trace_tools import   --dir DIR [--out-dir DIR]   (bulk: every .cbp)
 *   trace_tools convert  --in FILE --out FILE [--format text|binary]
 *   trace_tools info     --in FILE [--format binary|cbp]
 *   trace_tools suite    [--suite CBP4|CBP3|REC]      (list benchmarks)
 *   trace_tools verify   --in FILE                    (read + re-encode)
 *   trace_tools synth-recorded --dir DIR              (write rec-0N.cbp)
 */

#include <iostream>
#include <sstream>

#include "src/corpus/trace_corpus.hh"
#include "src/trace/cbp_reader.hh"
#include "src/trace/trace_io.hh"
#include "src/trace/trace_stats.hh"
#include "src/trace/trace_text.hh"
#include "src/util/cli.hh"
#include "src/util/table_writer.hh"
#include "src/workloads/generator_source.hh"
#include "src/workloads/suite.hh"

using namespace imli;

namespace
{

int
cmdGenerate(const CommandLine &cli)
{
    const std::string name = cli.getString("benchmark", "SPEC2K6-12");
    const std::string format = cli.getString("format", "binary");
    const std::string out = cli.getString(
        "out", name + (format == "cbp" ? ".cbp" : ".imt"));
    const std::size_t branches = cli.getCount("branches", 200000);
    if (format == "text") {
        const Trace trace = generateTrace(findBenchmark(name), branches);
        writeTraceTextFile(trace, out);
        std::cout << "wrote " << trace.size() << " branches ("
                  << trace.instructionCount() << " instructions) to " << out
                  << '\n';
        return 0;
    }
    // Binary outputs stream generator -> file chunk by chunk: arbitrarily
    // long traces are generated in O(chunk) memory.
    GeneratorBranchSource source(findBenchmark(name), branches);
    const std::uint64_t written =
        format == "cbp" ? writeCbpFile(source, out)
                        : writeTraceFile(source, out);
    std::cout << "wrote " << written << " branches (streamed, " << format
              << ") to " << out << '\n';
    return 0;
}

/**
 * Stream one CBP file to .imt and round-trip verify it; returns the
 * record count, throws std::runtime_error on any mismatch.  Neither
 * trace is ever materialized: the conversion streams chunk by chunk,
 * and verification replays both files in lockstep, still O(chunk) — a
 * championship-scale trace must verify without being materialized.  An
 * import that cannot be verified is deleted-grade.
 */
std::uint64_t
importOne(const std::string &in, const std::string &out,
          const std::string &name)
{
    CbpFileBranchSource source(in, name);
    const std::uint64_t written = writeTraceFile(source, out);

    CbpFileBranchSource again(in, name);
    FileBranchSource imported(out);
    if (imported.totalRecords() != written)
        throw std::runtime_error(
            "header count mismatch after conversion");
    BranchSpan sa = again.nextChunk();
    BranchSpan sb = imported.nextChunk();
    std::size_t ia = 0, ib = 0;
    std::uint64_t compared = 0;
    while (true) {
        if (ia == sa.count) {
            sa = again.nextChunk();
            ia = 0;
        }
        if (ib == sb.count) {
            sb = imported.nextChunk();
            ib = 0;
        }
        if (sa.empty() || sb.empty())
            break;
        if (!(sa[ia] == sb[ib]))
            throw std::runtime_error(
                "record " + std::to_string(compared) +
                " mismatch after round-trip");
        ++ia;
        ++ib;
        ++compared;
    }
    if (!sa.empty() || !sb.empty() || compared != written)
        throw std::runtime_error(
            "size mismatch after round-trip (" +
            std::to_string(compared) + " of " + std::to_string(written) +
            " compared)");
    return written;
}

/** Bulk import: every .cbp under --dir becomes an .imt in --out-dir
 *  (default: alongside the input), one summary row per file. */
int
cmdImportDir(const CommandLine &cli)
{
    if (cli.has("in") || cli.has("out") || cli.has("name")) {
        std::cerr << "import: --dir is the bulk mode; it cannot be "
                     "combined with --in/--out/--name\n";
        return 1;
    }
    const std::string dir = cli.getString("dir");
    const std::string outDir = cli.getString("out-dir", dir);

    // Corpus discovery (sorted by file name), narrowed to CBP inputs —
    // the .imt files a previous bulk import produced are not re-imported.
    std::vector<BenchmarkSpec> inputs;
    for (BenchmarkSpec &spec : TraceCorpus::fromDirectory(dir))
        if (spec.backend == TraceBackend::RecordedCbp)
            inputs.push_back(std::move(spec));
    if (inputs.empty()) {
        std::cerr << "import: no .cbp files in " << dir << '\n';
        return 1;
    }

    TableWriter table("Imported " + std::to_string(inputs.size()) +
                      " CBP trace(s) from " + dir);
    table.setHeader({"file", "branches", "output", "status"});
    std::size_t failures = 0;
    for (const BenchmarkSpec &spec : inputs) {
        const std::string out = outDir + "/" + spec.name + ".imt";
        try {
            const std::uint64_t written =
                importOne(spec.tracePath, out, spec.name);
            table.addRow({spec.tracePath, std::to_string(written), out,
                          "verified"});
        } catch (const std::exception &e) {
            ++failures;
            table.addRow({spec.tracePath, "-", out,
                          std::string("FAILED: ") + e.what()});
        }
    }
    table.print(std::cout);
    if (failures != 0) {
        std::cerr << "import: " << failures << " of " << inputs.size()
                  << " file(s) failed\n";
        return 1;
    }
    return 0;
}

int
cmdImport(const CommandLine &cli)
{
    if (cli.has("dir"))
        return cmdImportDir(cli);
    const std::string in = cli.getString("in");
    const std::string out = cli.getString("out");
    if (in.empty() || out.empty()) {
        std::cerr << "import: need --in FILE.cbp and --out FILE.imt "
                     "(or --dir DIR for bulk import)\n";
        return 1;
    }
    const std::string name = cli.getString("name", pathStem(in));
    try {
        const std::uint64_t written = importOne(in, out, name);
        std::cout << "imported " << written << " branches: " << in
                  << " -> " << out << " (round-trip verified)\n";
    } catch (const std::exception &e) {
        std::cerr << "import: " << e.what() << '\n';
        return 1;
    }
    return 0;
}

int
cmdConvert(const CommandLine &cli)
{
    const std::string in = cli.getString("in");
    const std::string out = cli.getString("out");
    if (in.empty() || out.empty()) {
        std::cerr << "convert: need --in FILE and --out FILE\n";
        return 1;
    }
    // Direction from the target format flag: to-text or to-binary.
    const bool to_text = cli.getString("format", "text") == "text";
    const Trace trace = to_text ? readTraceFile(in)
                                : readTraceTextFile(in);
    if (to_text)
        writeTraceTextFile(trace, out);
    else
        writeTraceFile(trace, out);
    std::cout << "converted " << trace.size() << " records to "
              << (to_text ? "text" : "binary") << ": " << out << '\n';
    return 0;
}

int
cmdInfo(const CommandLine &cli)
{
    const std::string in = cli.getString("in");
    if (in.empty()) {
        std::cerr << "info: missing --in FILE\n";
        return 1;
    }
    const Trace trace = cli.getString("format", "binary") == "cbp"
                            ? readCbpFile(in)
                            : readTraceFile(in);
    std::cout << "trace " << trace.name() << ":\n"
              << computeStats(trace).toString();
    return 0;
}

int
cmdSuite(const CommandLine &cli)
{
    const std::string which = cli.getString("suite", "");
    std::vector<BenchmarkSpec> all = fullSuite();
    std::vector<BenchmarkSpec> recorded = recordedScenarios();
    all.insert(all.end(), recorded.begin(), recorded.end());
    for (const BenchmarkSpec &b : all) {
        if (!which.empty() && b.suite != which)
            continue;
        std::cout << b.suite << "  " << b.name << "  (seed "
                  << b.seed << ", " << b.kernels.size() << " kernels)\n";
    }
    return 0;
}

int
cmdVerify(const CommandLine &cli)
{
    const std::string in = cli.getString("in");
    if (in.empty()) {
        std::cerr << "verify: missing --in FILE\n";
        return 1;
    }
    const Trace trace = readTraceFile(in);
    std::ostringstream buffer;
    writeTrace(trace, buffer);
    std::istringstream replay(buffer.str());
    const Trace again = readTrace(replay);
    if (again.size() != trace.size()) {
        std::cerr << "verify: size mismatch after round-trip\n";
        return 1;
    }
    for (std::size_t i = 0; i < trace.size(); ++i) {
        if (!(trace[i] == again[i])) {
            std::cerr << "verify: record " << i << " mismatch\n";
            return 1;
        }
    }
    std::cout << "verify: OK (" << trace.size() << " records round-trip)\n";
    return 0;
}

int
cmdSynthRecorded(const CommandLine &cli)
{
    const std::string dir = cli.getString("dir");
    if (dir.empty()) {
        std::cerr << "synth-recorded: missing --dir DIR\n";
        return 1;
    }
    // Deterministic by construction: each scenario streams its generating
    // spec into CBP format, so re-running reproduces the checked-in
    // tests/data files bit for bit (a golden test holds us to that).
    // recordedSuite() supplies the paths, so the writer can never drift
    // from where the suite runner will look.
    const std::vector<BenchmarkSpec> scenarios = recordedScenarios();
    const std::vector<BenchmarkSpec> targets = recordedSuite(dir);
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        GeneratorBranchSource source(scenarios[i],
                                     recordedScenarioBranches);
        const std::uint64_t written =
            writeCbpFile(source, targets[i].tracePath);
        std::cout << "wrote " << written << " branches to "
                  << targets[i].tracePath << '\n';
    }
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv);
    if (cli.positionals().empty()) {
        std::cout <<
            "usage: trace_tools "
            "<generate|import|convert|info|suite|verify|synth-recorded>\n"
            "  generate --benchmark NAME --out FILE [--branches N]\n"
            "           [--format binary|text|cbp]\n"
            "  import   --in FILE.cbp --out FILE.imt [--name NAME]\n"
            "  import   --dir DIR [--out-dir DIR]   (bulk: every .cbp)\n"
            "  convert  --in FILE --out FILE [--format text|binary]\n"
            "  info     --in FILE [--format binary|cbp]\n"
            "  suite    [--suite CBP4|CBP3|REC]\n"
            "  verify   --in FILE\n"
            "  synth-recorded --dir DIR\n";
        return 0;
    }
    const std::string &cmd = cli.positionals()[0];
    try {
        if (cmd == "generate")
            return cmdGenerate(cli);
        if (cmd == "import")
            return cmdImport(cli);
        if (cmd == "convert")
            return cmdConvert(cli);
        if (cmd == "info")
            return cmdInfo(cli);
        if (cmd == "suite")
            return cmdSuite(cli);
        if (cmd == "verify")
            return cmdVerify(cli);
        if (cmd == "synth-recorded")
            return cmdSynthRecorded(cli);
        std::cerr << "unknown subcommand: " << cmd << '\n';
        return 1;
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
}
