/**
 * @file
 * Trace tooling: generate, inspect and round-trip binary trace files.
 *
 * Subcommands:
 *   trace_tools generate --benchmark NAME --out FILE [--branches N]
 *   trace_tools info     --in FILE
 *   trace_tools suite    [--suite CBP4|CBP3]        (list benchmarks)
 *   trace_tools verify   --in FILE                  (read + re-encode check)
 */

#include <iostream>
#include <sstream>

#include "src/trace/trace_io.hh"
#include "src/trace/trace_stats.hh"
#include "src/trace/trace_text.hh"
#include "src/util/cli.hh"
#include "src/workloads/generator_source.hh"
#include "src/workloads/suite.hh"

using namespace imli;

namespace
{

int
cmdGenerate(const CommandLine &cli)
{
    const std::string name = cli.getString("benchmark", "SPEC2K6-12");
    const std::string out = cli.getString("out", name + ".imt");
    const std::size_t branches =
        static_cast<std::size_t>(cli.getInt("branches", 200000));
    if (cli.getString("format", "binary") == "text") {
        const Trace trace = generateTrace(findBenchmark(name), branches);
        writeTraceTextFile(trace, out);
        std::cout << "wrote " << trace.size() << " branches ("
                  << trace.instructionCount() << " instructions) to " << out
                  << '\n';
        return 0;
    }
    // Binary output streams generator -> file chunk by chunk: arbitrarily
    // long traces are generated in O(chunk) memory.
    GeneratorBranchSource source(findBenchmark(name), branches);
    const std::uint64_t written = writeTraceFile(source, out);
    std::cout << "wrote " << written << " branches (streamed) to " << out
              << '\n';
    return 0;
}

int
cmdConvert(const CommandLine &cli)
{
    const std::string in = cli.getString("in");
    const std::string out = cli.getString("out");
    if (in.empty() || out.empty()) {
        std::cerr << "convert: need --in FILE and --out FILE\n";
        return 1;
    }
    // Direction from the target format flag: to-text or to-binary.
    const bool to_text = cli.getString("format", "text") == "text";
    const Trace trace = to_text ? readTraceFile(in)
                                : readTraceTextFile(in);
    if (to_text)
        writeTraceTextFile(trace, out);
    else
        writeTraceFile(trace, out);
    std::cout << "converted " << trace.size() << " records to "
              << (to_text ? "text" : "binary") << ": " << out << '\n';
    return 0;
}

int
cmdInfo(const CommandLine &cli)
{
    const std::string in = cli.getString("in");
    if (in.empty()) {
        std::cerr << "info: missing --in FILE\n";
        return 1;
    }
    const Trace trace = readTraceFile(in);
    std::cout << "trace " << trace.name() << ":\n"
              << computeStats(trace).toString();
    return 0;
}

int
cmdSuite(const CommandLine &cli)
{
    const std::string which = cli.getString("suite", "");
    for (const BenchmarkSpec &b : fullSuite()) {
        if (!which.empty() && b.suite != which)
            continue;
        std::ostringstream kernels;
        for (std::size_t i = 0; i < b.kernels.size(); ++i)
            kernels << (i ? "," : "") << static_cast<int>(b.kernels[i].type);
        std::cout << b.suite << "  " << b.name << "  (seed "
                  << b.seed << ", " << b.kernels.size() << " kernels)\n";
    }
    return 0;
}

int
cmdVerify(const CommandLine &cli)
{
    const std::string in = cli.getString("in");
    if (in.empty()) {
        std::cerr << "verify: missing --in FILE\n";
        return 1;
    }
    const Trace trace = readTraceFile(in);
    std::ostringstream buffer;
    writeTrace(trace, buffer);
    std::istringstream replay(buffer.str());
    const Trace again = readTrace(replay);
    if (again.size() != trace.size()) {
        std::cerr << "verify: size mismatch after round-trip\n";
        return 1;
    }
    for (std::size_t i = 0; i < trace.size(); ++i) {
        if (!(trace[i] == again[i])) {
            std::cerr << "verify: record " << i << " mismatch\n";
            return 1;
        }
    }
    std::cout << "verify: OK (" << trace.size() << " records round-trip)\n";
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv);
    if (cli.positionals().empty()) {
        std::cout <<
            "usage: trace_tools <generate|convert|info|suite|verify>\n"
            "  generate --benchmark NAME --out FILE [--branches N]\n"
            "           [--format binary|text]\n"
            "  convert  --in FILE --out FILE [--format text|binary]\n"
            "  info     --in FILE\n"
            "  suite    [--suite CBP4|CBP3]\n"
            "  verify   --in FILE\n";
        return 0;
    }
    const std::string &cmd = cli.positionals()[0];
    try {
        if (cmd == "generate")
            return cmdGenerate(cli);
        if (cmd == "convert")
            return cmdConvert(cli);
        if (cmd == "info")
            return cmdInfo(cli);
        if (cmd == "suite")
            return cmdSuite(cli);
        if (cmd == "verify")
            return cmdVerify(cli);
        std::cerr << "unknown subcommand: " << cmd << '\n';
        return 1;
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
}
