/**
 * @file
 * Loop-nest analysis: instruments the IMLI counter on a Figure-1-style
 * two-dimensional loop nest and shows, per branch class, which predictor
 * component captures it.
 *
 * The example builds one nest with every correlation class from the
 * paper (B1/B2/B3/B4, inverted), verifies that the fetch-time IMLI
 * counter heuristic tracks the inner iteration index, and then runs the
 * component ladder (base / +SIC / +SIC+OH / +WH) to attribute accuracy
 * per branch class — a miniature of the paper's Section 4 analysis.
 *
 * Usage: loop_nest_analysis [--trip 24] [--outer 30] [--rounds 60]
 */

#include <iostream>
#include <map>

#include "src/core/imli_counter.hh"
#include "src/predictors/zoo.hh"
#include "src/sim/simulator.hh"
#include "src/util/cli.hh"
#include "src/util/table_writer.hh"
#include "src/workloads/two_dim_loop.hh"

using namespace imli;

int
main(int argc, char **argv)
try {
    CommandLine cli(argc, argv);
    const unsigned trip = static_cast<unsigned>(cli.getCount("trip", 24));
    const unsigned outer = static_cast<unsigned>(cli.getCount("outer", 30));
    const unsigned rounds =
        static_cast<unsigned>(cli.getCount("rounds", 60));

    // One nest containing every correlation class of the paper.
    TwoDimLoopParams params;
    params.outerIters = outer;
    params.innerTripMin = trip;
    params.innerTripMax = trip;
    params.body = {
        {BodyClass::SameIter, 0.0, 0.6, 0.5}, // B3: Out[N][M]=Out[N-1][M]
        {BodyClass::DiagPrev, 0.0, 0.6, 0.5}, // Out[N][M]=Out[N-1][M-1]
        {BodyClass::DiagNext, 0.0, 0.6, 0.5}, // B1: Out[N][M]=Out[N-1][M+1]
        {BodyClass::Inverted, 0.0, 0.6, 0.5}, // MM-4: inverted
        {BodyClass::Weak, 0.25, 0.6, 0.5},    // B2: weak correlation
        {BodyClass::Nested, 0.0, 0.6, 0.5},   // B4: guarded
        {BodyClass::Random, 0.0, 0.6, 0.5},   // history spoiler
    };
    TwoDimLoopKernel kernel(params, 0x400000, Xoroshiro128(42));

    Trace trace("loop-nest");
    for (unsigned r = 0; r < rounds; ++r)
        kernel.emitRound(trace);

    // --- 1. IMLI counter instrumentation --------------------------------
    // Verify the fetch-time heuristic recovers the inner iteration index:
    // body branches at inner iteration M observe IMLIcount == M + 1 in
    // steady state (the +1 comes from the outer backedge, exactly the
    // construction offset the paper mentions in Section 4.1).
    ImliCounter counter(10);
    std::map<unsigned, std::uint64_t> histogram;
    unsigned m_index = 0;
    std::uint64_t aligned = 0;
    std::uint64_t body_occurrences = 0;
    for (const BranchRecord &rec : trace.branches()) {
        if (!isConditional(rec.type))
            continue;
        if (rec.pc == kernel.bodyBranchPc(0)) {
            ++histogram[counter.value()];
            ++body_occurrences;
            if (counter.value() == m_index + 1)
                ++aligned;
        }
        if (rec.pc == kernel.innerBackedgePc())
            m_index = rec.taken ? m_index + 1 : 0;
        counter.onConditionalBranch(rec.pc, rec.target, rec.taken);
    }
    std::cout << "IMLI counter alignment with the inner iteration index: "
              << (100.0 * static_cast<double>(aligned) /
                  static_cast<double>(body_occurrences))
              << " % of body-branch fetches\n\n";

    // --- 2. Component attribution per branch class -----------------------
    const std::vector<std::string> configs = {
        "tage-gsc", "tage-gsc+sic", "tage-gsc+i", "tage-gsc+wh",
    };
    struct ClassPcs
    {
        std::string label;
        std::uint64_t pc;
    };
    const std::vector<ClassPcs> classes = {
        {"B3 same-iter", kernel.bodyBranchPc(0)},
        {"   diag-prev", kernel.bodyBranchPc(1)},
        {"B1 diag-next", kernel.bodyBranchPc(2)},
        {"   inverted", kernel.bodyBranchPc(3)},
        {"B2 weak", kernel.bodyBranchPc(4)},
        {"B4 nested", kernel.bodyBranchPc(5)},
        {"   random", kernel.bodyBranchPc(6)},
        {"   inner exit", kernel.innerBackedgePc()},
    };

    TableWriter table("Mispredictions per branch class (lower is better)");
    std::vector<std::string> header = {"branch class"};
    for (const auto &c : configs)
        header.push_back(c);
    table.setHeader(header);

    std::map<std::string, SimResult> results;
    for (const std::string &spec : configs) {
        PredictorPtr predictor = makePredictor(spec);
        SimOptions options;
        options.collectPerPc = true;
        results.emplace(spec, simulate(*predictor, trace, options));
    }
    for (const ClassPcs &cls : classes) {
        std::vector<std::string> row = {cls.label};
        for (const std::string &spec : configs) {
            const auto &per_pc = results.at(spec).perPcMispredictions;
            const auto it = per_pc.find(cls.pc);
            row.push_back(std::to_string(
                it == per_pc.end() ? 0 : it->second));
        }
        table.addRow(row);
    }
    table.print(std::cout);

    std::cout << "\nReading guide: SIC should clear the same-iter and "
                 "nested rows;\nOH/WH additionally clear diag-prev and "
                 "inverted; only WH tracks diag-next;\nnobody fixes the "
                 "random row.\n";
    return 0;
} catch (const std::exception &e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}
