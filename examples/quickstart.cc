/**
 * @file
 * Quickstart: build a predictor, run it on a synthetic benchmark, print
 * accuracy and storage — the 30-line tour of the library.
 *
 * Usage: quickstart [--predictor tage-gsc+i] [--benchmark SPEC2K6-12]
 *                   [--branches 200000]
 */

#include <iostream>

#include "src/predictors/zoo.hh"
#include "src/sim/simulator.hh"
#include "src/util/cli.hh"
#include "src/workloads/suite.hh"

int
main(int argc, char **argv)
try {
    imli::CommandLine cli(argc, argv);
    const std::string spec = cli.getString("predictor", "tage-gsc+i");
    const std::string bench = cli.getString("benchmark", "SPEC2K6-12");
    const std::size_t branches = cli.getCount("branches", 200000);

    // 1. Pick a workload: a named benchmark from the synthetic suite.
    const imli::BenchmarkSpec benchmark = imli::findBenchmark(bench);
    const imli::Trace trace = imli::generateTrace(benchmark, branches);

    // 2. Pick a predictor configuration from the zoo.
    imli::PredictorPtr predictor = imli::makePredictor(spec);

    // 3. Simulate and report.
    imli::SimOptions options;
    options.collectPerPc = cli.has("offenders");
    const imli::SimResult result = imli::simulate(*predictor, trace,
                                                  options);

    std::cout << "predictor : " << predictor->name() << '\n'
              << "benchmark : " << trace.name() << " ("
              << trace.size() << " branches, "
              << trace.instructionCount() << " instructions)\n"
              << "accuracy  : " << 100.0 * result.accuracy() << " %\n"
              << "MPKI      : " << result.mpki() << '\n'
              << "storage   : " << predictor->storage().totalKbits()
              << " Kbits\n";

    if (cli.has("offenders")) {
        // Bare "--offenders" means the default count; a value overrides.
        const std::size_t n = cli.getString("offenders").empty()
                                  ? 10
                                  : cli.getCount("offenders");
        std::cout << "top offending branches:\n";
        for (const auto &[pc, count] : result.topOffenders(n)) {
            std::cout << "  pc 0x" << std::hex << pc << std::dec << ": "
                      << count << " mispredictions\n";
        }
    }
    return 0;
} catch (const std::exception &e) {
    // Unknown benchmark/predictor names or malformed numeric flags: fail
    // with the message, not a raw terminate().
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}
